//! E17 — goodput availability: how much offered user traffic the mesh
//! actually delivered, alongside Figure 6's per-layer availability.
//!
//! Figure 6 scores whether a node's data-plane path *existed*; this
//! experiment scores what that path was *worth*: the flow-level
//! traffic engine offers each balloon's diurnal user demand, the
//! tiered max-min allocator pushes it through the programmed
//! forwarding graph at ACM capacities (weather fade degrades the MCS
//! operating point), and goodput = delivered/offered bits. The gap
//! between the data-plane availability line and the goodput line is
//! congestion + fade — invisible to reachability probes.
//!
//! Two runs, identical except for multipath: the baseline pins every
//! site to its primary route; the treatment splits bulk load across
//! the primary and the edge-disjoint alternate whenever the
//! controller programmed one (§4.2 redundancy). The delta is the
//! multipath availability benefit.
//!
//! Writes artifact-style tables under `artifact_out/`:
//! `traffic.csv` (per-site), `goodput_windows.csv` (per-window
//! series), `traffic_classes.csv` (control vs bulk).

use tssdn_bench::{days, seed};
use tssdn_core::Orchestrator;
use tssdn_scenario::{
    DemandSpec, FaultsSpec, FleetSpec, Geography, ScenarioSpec, TrafficSpec, WeatherRegime,
    WeatherSpec,
};
use tssdn_sim::{PlatformId, SimTime};
use tssdn_telemetry::export::{
    goodput_windows_table, push_goodput_window, push_traffic_class, push_traffic_site,
    traffic_classes_table, traffic_table,
};
use tssdn_telemetry::Layer;

/// The E17 world as a spec: 12 balloons spread over 220 km, stormy
/// wet-season afternoons with the production-like gauge belief, the
/// default diurnal demand model. `multipath` toggles both the
/// controller's alternate-route programming and the engine's load
/// splitting (the spec's one flag drives both, as the old hand-built
/// config did).
fn spec_for(num_days: u64, multipath: bool) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("fig_goodput_{}", if multipath { "multi" } else { "single" }),
        seed: seed(),
        duration_hours: num_days * 24,
        multipath,
        fleet: FleetSpec {
            geography: Geography::Kenya,
            n_balloons: 12,
            spawn_radius_km: 220.0,
        },
        demand: DemandSpec::default(),
        weather: WeatherSpec {
            regime: WeatherRegime::Stormy {
                intensity: 1.0,
                days: num_days,
            },
            gauges: true,
        },
        faults: FaultsSpec::Quiet,
        traffic: TrafficSpec::default(),
    }
}

/// One full scenario run.
fn run(num_days: u64, multipath: bool) -> Orchestrator {
    let mut o = spec_for(num_days, multipath).build();
    for d in 1..=num_days {
        o.run_until(SimTime::from_days(d));
        let s = o.traffic().expect("traffic enabled").series();
        eprintln!(
            "  [{} day {d}/{num_days}] links up {} goodput so far {:?}",
            if multipath { "multi" } else { "single" },
            o.intents.established().count(),
            s.overall().map(|g| format!("{g:.3}")),
        );
    }
    o
}

fn main() -> std::io::Result<()> {
    let num_days = days(6);
    println!("=== E17: goodput availability (tiered traffic engine, multipath) ===");
    println!(
        "12 balloons, {num_days} days x2 (single-path baseline, multipath), seed {}",
        seed()
    );

    let base = run(num_days, false);
    let o = run(num_days, true);
    let engine = o.traffic().expect("traffic enabled");
    let series = engine.series();
    let base_series = base.traffic().expect("traffic enabled").series();

    println!();
    println!("# E17 series: day  link_av  data_av  goodput   (ratios; goodput ≤ data_av modulo congestion)");
    for d in 0..num_days {
        let link = o.availability.window_ratio(d, Layer::Link);
        let data = o.availability.window_ratio(d, Layer::DataPlane);
        let good = series.window_goodput(d);
        let fmt = |x: Option<f64>| x.map_or_else(|| "   -  ".into(), |v| format!("{v:6.3}"));
        println!("  {d:>3}  {}  {}  {}", fmt(link), fmt(data), fmt(good));
    }

    println!();
    println!(
        "# totals: offered {:.1} Gbit, delivered {:.1} Gbit, overall goodput {:?}",
        series.offered_bits() as f64 / 1e9,
        series.delivered_bits() as f64 / 1e9,
        series.overall().map(|g| format!("{g:.4}")),
    );
    println!(
        "# events: {} disruptions (path torn under load), {} reroutes",
        series.total_disruptions(),
        series.total_reroutes(),
    );

    // Multipath availability benefit: same world, same demand, only
    // the second forwarding path differs.
    println!();
    println!("# multipath delta (single-path baseline -> multipath):");
    println!(
        "#   goodput {:?} -> {:?}",
        base_series.overall().map(|g| format!("{g:.4}")),
        series.overall().map(|g| format!("{g:.4}")),
    );
    println!(
        "#   delivered {:.2} Gbit -> {:.2} Gbit ({:+.2}%)",
        base_series.delivered_bits() as f64 / 1e9,
        series.delivered_bits() as f64 / 1e9,
        100.0 * (series.delivered_bits() as f64 / base_series.delivered_bits().max(1) as f64 - 1.0),
    );
    println!(
        "#   disruptions {} -> {}",
        base_series.total_disruptions(),
        series.total_disruptions(),
    );

    // Per-class split: the strict-priority control class should sit
    // at (or near) goodput 1.0 while bulk absorbs the congestion.
    println!();
    println!("# per-class goodput (strict priority):");
    for c in series.classes() {
        println!(
            "#   {:<8} {:?}",
            c.label(),
            series.class_goodput(c).map(|g| format!("{g:.4}")),
        );
    }

    // Demand feedback snapshot: measured EWMA weights the solver ran
    // with at the end of the run vs the static configured demand.
    println!();
    println!("# demand digest (bps): site  configured  measured_ewma");
    for b in (0..o.num_balloons() as u32).map(PlatformId) {
        let w = engine.demand_weight_bps(b);
        println!(
            "  {b:>4}  {:>10}  {:>10}",
            o.config.demand_bps,
            w.map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }

    // Artifact-style tables, written alongside the other exports.
    let mut sites = traffic_table();
    for site in series.sites() {
        push_traffic_site(&mut sites, series, site);
    }
    let mut windows = goodput_windows_table();
    for w in series.windows() {
        push_goodput_window(&mut windows, series, w);
    }
    let mut classes = traffic_classes_table();
    for c in series.classes() {
        push_traffic_class(&mut classes, series, c);
    }
    std::fs::create_dir_all("artifact_out")?;
    println!();
    for (name, table) in [
        ("traffic.csv", &sites),
        ("goodput_windows.csv", &windows),
        ("traffic_classes.csv", &classes),
    ] {
        let path = format!("artifact_out/{name}");
        std::fs::write(&path, table.to_csv())?;
        println!("wrote {path}: {} rows", table.len());
    }
    Ok(())
}
