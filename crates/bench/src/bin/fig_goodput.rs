//! E17 — goodput availability: how much offered user traffic the mesh
//! actually delivered, alongside Figure 6's per-layer availability.
//!
//! Figure 6 scores whether a node's data-plane path *existed*; this
//! experiment scores what that path was *worth*: the flow-level
//! traffic engine offers each balloon's diurnal user demand, the
//! max-min allocator pushes it through the programmed forwarding
//! graph at ACM capacities (weather fade degrades the MCS operating
//! point), and goodput = delivered/offered bits. The gap between the
//! data-plane availability line and the goodput line is congestion +
//! fade — invisible to reachability probes.
//!
//! Also exercises the demand-feedback loop: the solver's request
//! weights track the engine's measured-demand EWMA through the
//! diurnal cycle.

use tssdn_bench::{days, seed, standard_config};
use tssdn_core::{Orchestrator, TrafficConfig};
use tssdn_sim::{PlatformId, SimTime};
use tssdn_telemetry::export::{push_traffic_site, traffic_table};
use tssdn_telemetry::Layer;

fn main() {
    let num_days = days(6);
    println!("=== E17: goodput availability (flow-level traffic engine) ===");
    println!("12 balloons, {num_days} days, seed {}", seed());

    let mut cfg = standard_config(12, num_days, seed());
    cfg.fleet.spawn_radius_m = 220_000.0;
    cfg.traffic = Some(TrafficConfig::default());
    let mut o = Orchestrator::new(cfg);
    for d in 1..=num_days {
        o.run_until(SimTime::from_days(d));
        let s = o.traffic().expect("traffic enabled").series();
        eprintln!(
            "  [day {d}/{num_days}] links up {} goodput so far {:?}",
            o.intents.established().count(),
            s.overall().map(|g| format!("{g:.3}")),
        );
    }

    let engine = o.traffic().expect("traffic enabled");
    let series = engine.series();

    println!();
    println!("# E17 series: day  link_av  data_av  goodput   (ratios; goodput ≤ data_av modulo congestion)");
    for d in 0..num_days {
        let link = o.availability.window_ratio(d, Layer::Link);
        let data = o.availability.window_ratio(d, Layer::DataPlane);
        let good = series.window_goodput(d);
        let fmt = |x: Option<f64>| x.map_or_else(|| "   -  ".into(), |v| format!("{v:6.3}"));
        println!("  {d:>3}  {}  {}  {}", fmt(link), fmt(data), fmt(good));
    }

    println!();
    println!(
        "# totals: offered {:.1} Gbit, delivered {:.1} Gbit, overall goodput {:?}",
        series.offered_bits() as f64 / 1e9,
        series.delivered_bits() as f64 / 1e9,
        series.overall().map(|g| format!("{g:.4}")),
    );
    println!(
        "# events: {} disruptions (path torn under load), {} reroutes",
        series.total_disruptions(),
        series.total_reroutes(),
    );

    // Demand feedback snapshot: measured EWMA weights the solver ran
    // with at the end of the run vs the static configured demand.
    println!();
    println!("# demand digest (bps): site  configured  measured_ewma");
    for b in (0..o.num_balloons() as u32).map(PlatformId) {
        let w = engine.demand_weight_bps(b);
        println!(
            "  {b:>4}  {:>10}  {:>10}",
            o.config.demand_bps,
            w.map_or_else(|| "-".into(), |v| v.to_string()),
        );
    }

    // Artifact-style per-site table.
    let mut table = traffic_table();
    for site in series.sites() {
        push_traffic_site(&mut table, series, site);
    }
    println!();
    println!("# traffic.csv ({} rows)", table.len());
    print!("{}", table.to_csv());
}
