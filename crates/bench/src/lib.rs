//! Shared scenario builders and reporting helpers for the figure
//! harness binaries (`src/bin/fig*.rs`, `src/bin/ablation_*.rs`,
//! `src/bin/app*.rs`) and the criterion benches (`benches/`).
//!
//! Every binary regenerates one paper figure/claim; see DESIGN.md §3
//! for the experiment index and EXPERIMENTS.md for paper-vs-measured
//! results.

use tssdn_core::{Orchestrator, OrchestratorConfig};
use tssdn_sim::SimTime;
use tssdn_telemetry::{percentile, Summary};

// The wet-season weather truth lives with the scenario builder now;
// re-exported so existing figure binaries keep compiling unchanged.
pub use tssdn_scenario::stormy_truth;

/// Standard experiment seed (override with `TSSDN_SEED`).
pub fn seed() -> u64 {
    std::env::var("TSSDN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20220822)
}

/// Scale factor for experiment durations/fleets (default 1.0; set
/// `TSSDN_SCALE=0.25` for a quick smoke run).
pub fn scale() -> f64 {
    std::env::var("TSSDN_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scale a day count, with a floor of 1.
pub fn days(n: u64) -> u64 {
    ((n as f64 * scale()).round() as u64).max(1)
}

/// The standard full-loop scenario most experiments start from:
/// `n` balloons over Kenya, stormy afternoons, 3 ground stations, and
/// the production-like weather belief (site gauges + an imperfect
/// forecast over the ITU backstop, §5).
pub fn standard_config(n: usize, num_days: u64, seed: u64) -> OrchestratorConfig {
    let mut cfg = OrchestratorConfig::kenya(n, seed);
    cfg.weather_truth = stormy_truth(num_days, 1.0);
    cfg.weather_model = tssdn_core::WeatherModelKind::WithGauges {
        position_error_m: 20_000.0,
        timing_error_ms: 30 * 60 * 1000,
        intensity_scale: 0.8,
    };
    cfg
}

/// Run an orchestrator to `days` simulated days, printing progress.
pub fn run_days(o: &mut Orchestrator, num_days: u64) {
    for d in 1..=num_days {
        o.run_until(SimTime::from_days(d));
        eprintln!(
            "  [day {d}/{num_days}] intents={} links_up={}",
            o.intents.all().count(),
            o.intents.established().count()
        );
    }
}

/// Print a CDF as `value fraction` rows for a fixed quantile ladder.
pub fn print_cdf(label: &str, xs: &[f64]) {
    println!("# CDF: {label} (n={})", xs.len());
    if xs.is_empty() {
        println!("  (no samples)");
        return;
    }
    for p in [1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
        let v = percentile(xs, p).expect("non-empty");
        println!("  p{p:<4} {v:>10.2}");
    }
}

/// Print a summary line.
pub fn print_summary(label: &str, xs: &[f64]) {
    match Summary::of(xs) {
        Some(s) => println!("{label}: {s}"),
        None => println!("{label}: (no samples)"),
    }
}

/// Appendix A's mesh-redundancy fraction: given `b` balloons in the
/// mesh, `g` ground-station transceivers, and `l` installed links,
/// `Lmin = b`, `Lmax = floor((g + 3b)/2)`, and the utilized fraction
/// of possible redundant links is `(l − Lmin)/(Lmax − Lmin)`.
/// Returns `None` when the mesh is degenerate (no redundancy room).
pub fn redundancy_fraction(b: usize, g: usize, l: usize) -> Option<f64> {
    let lmin = b;
    let lmax = (g + 3 * b) / 2;
    if lmax <= lmin {
        return None;
    }
    Some((l as f64 - lmin as f64) / (lmax as f64 - lmin as f64))
}

/// Format seconds human-readably (paper style: 1m45s).
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!(
            "{}h{:02}m{:02}s",
            (s / 3600.0) as u64,
            ((s / 60.0) as u64) % 60,
            s as u64 % 60
        )
    } else if s >= 60.0 {
        format!("{}m{:02}s", (s / 60.0) as u64, s as u64 % 60)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_matches_paper_style() {
        assert_eq!(fmt_secs(105.0), "1m45s");
        assert_eq!(fmt_secs(23.0), "23.0s");
        assert_eq!(fmt_secs(1555.0), "25m55s");
        assert_eq!(fmt_secs(5400.0), "1h30m00s");
    }

    #[test]
    fn scale_days_floor() {
        assert!(days(4) >= 1);
    }
}
