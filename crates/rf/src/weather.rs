//! Weather truth, forecasts, gauges, and gridded interpolation.
//!
//! §5 of the paper describes three weather-data vectors: ITU-R
//! regional-seasonal estimates, rain gauges at ground-station sites,
//! and ECMWF forecasts — and finds forecasts "didn't have sufficient
//! accuracy and fidelity to be relied upon". To reproduce those
//! trade-offs we model weather *truth* as moving convective rain
//! cells, then expose degraded observations of that truth:
//!
//! * [`RainGauge`] — accurate but point-local and real-time only.
//! * [`ForecastView`] — full 4-D coverage but with position, timing
//!   and intensity error (tunable, so E11 can sweep forecast skill).
//! * [`ItuSeasonal`] — a constant climatological average, the
//!   "backstop" (§3.1).
//!
//! [`WeatherGrid`] reproduces the evaluator optimization of "caching
//! or precomputing attenuation values for volumes of the atmosphere,
//! and then assembling them using 4-D linear interpolation" (§3.1).

use tssdn_geo::GeoPoint;

/// Local weather at one point and instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeatherSample {
    /// Rain rate, mm/h (0 when not raining at this point).
    pub rain_mm_h: f64,
    /// Cloud liquid-water content, g/m³.
    pub cloud_lwc_g_m3: f64,
}

impl WeatherSample {
    /// Element-wise maximum — used when layering fields.
    pub fn max(self, other: WeatherSample) -> WeatherSample {
        WeatherSample {
            rain_mm_h: self.rain_mm_h.max(other.rain_mm_h),
            cloud_lwc_g_m3: self.cloud_lwc_g_m3.max(other.cloud_lwc_g_m3),
        }
    }
}

/// Any source of weather data: truth, forecast, or climatology.
pub trait WeatherField {
    /// Weather at `pos` at time `t_ms`.
    fn sample(&self, pos: &GeoPoint, t_ms: u64) -> WeatherSample;
}

/// No weather at all — clear, dry sky.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClearSky;

impl WeatherField for ClearSky {
    fn sample(&self, _pos: &GeoPoint, _t_ms: u64) -> WeatherSample {
        WeatherSample::default()
    }
}

/// ITU-R-style regional-seasonal climatological average: constant
/// light loss everywhere, independent of actual conditions. The paper
/// intentionally chose "a pessimistic level from the ITU-R regional
/// seasonal average model" (§5), which is why measured signal ran
/// ~4.3 dB *better* than modelled on average (Figure 10).
#[derive(Debug, Clone, Copy)]
pub struct ItuSeasonal {
    /// Assumed ambient rain rate, mm/h.
    pub ambient_rain_mm_h: f64,
    /// Assumed ambient cloud water, g/m³.
    pub ambient_cloud_g_m3: f64,
}

impl ItuSeasonal {
    /// Pessimistic tropical wet-season default, calibrated so a
    /// ~150 km B2G path loses ≈4–7 dB relative to clear sky — the
    /// scale of the paper's +4.3 dB measured-better-than-modelled
    /// shift. (A naive "average rain everywhere" assumption would add
    /// tens of dB and model every long B2G link as dead.)
    pub fn tropical_wet() -> Self {
        ItuSeasonal {
            ambient_rain_mm_h: 0.09,
            ambient_cloud_g_m3: 0.02,
        }
    }
}

impl WeatherField for ItuSeasonal {
    fn sample(&self, pos: &GeoPoint, _t_ms: u64) -> WeatherSample {
        // Climatology applies below the rain height / cloud tops only.
        WeatherSample {
            rain_mm_h: if pos.alt_m < crate::rain::RAIN_HEIGHT_M {
                self.ambient_rain_mm_h
            } else {
                0.0
            },
            cloud_lwc_g_m3: if crate::atmosphere::in_cloud_layer(pos.alt_m) {
                self.ambient_cloud_g_m3
            } else {
                0.0
            },
        }
    }
}

/// A moving convective rain cell: Gaussian in the horizontal, active
/// over a time window, drifting with the tropospheric wind.
#[derive(Debug, Clone, Copy)]
pub struct RainCell {
    /// Cell center at `start_ms`.
    pub center: GeoPoint,
    /// Drift velocity east, m/s.
    pub vel_east_mps: f64,
    /// Drift velocity north, m/s.
    pub vel_north_mps: f64,
    /// 1-sigma horizontal radius, meters.
    pub radius_m: f64,
    /// Peak rain rate at the center, mm/h.
    pub peak_rain_mm_h: f64,
    /// Cell becomes active at this time, ms.
    pub start_ms: u64,
    /// Cell dissipates at this time, ms.
    pub end_ms: u64,
}

impl RainCell {
    /// Cell center position at time `t_ms`.
    pub fn center_at(&self, t_ms: u64) -> GeoPoint {
        let dt = t_ms.saturating_sub(self.start_ms) as f64 / 1000.0;
        self.center
            .offset(self.vel_east_mps * dt, self.vel_north_mps * dt, 0.0)
    }

    /// Rain rate contributed by this cell at `pos`/`t_ms`.
    pub fn rain_at(&self, pos: &GeoPoint, t_ms: u64) -> f64 {
        if t_ms < self.start_ms || t_ms > self.end_ms {
            return 0.0;
        }
        if pos.alt_m >= crate::rain::RAIN_HEIGHT_M {
            return 0.0;
        }
        let c = self.center_at(t_ms);
        let d = c.ground_distance_m(&GeoPoint::new(pos.lat_deg, pos.lon_deg, 0.0));
        // Intensity ramps in/out over the first/last 10% of the lifetime.
        let life = (self.end_ms - self.start_ms).max(1) as f64;
        let age = (t_ms - self.start_ms) as f64 / life;
        let ramp = (age * 10.0).min((1.0 - age) * 10.0).clamp(0.0, 1.0);
        self.peak_rain_mm_h * ramp * (-0.5 * (d / self.radius_m).powi(2)).exp()
    }

    /// Cloud water associated with the cell (clouds extend ~2× the
    /// rain footprint and persist at altitudes up to the cloud layer).
    pub fn cloud_at(&self, pos: &GeoPoint, t_ms: u64) -> f64 {
        if t_ms < self.start_ms || t_ms > self.end_ms {
            return 0.0;
        }
        if !crate::atmosphere::in_cloud_layer(pos.alt_m) {
            return 0.0;
        }
        let c = self.center_at(t_ms);
        let d = c.ground_distance_m(&GeoPoint::new(pos.lat_deg, pos.lon_deg, 0.0));
        let sigma = self.radius_m * 2.0;
        // Peak LWC scales with rain intensity, capped at thick cumulus.
        let peak = (self.peak_rain_mm_h / 40.0).min(1.0);
        peak * (-0.5 * (d / sigma).powi(2)).exp()
    }
}

/// Ground-truth weather: a set of rain cells over a clear background.
#[derive(Debug, Clone, Default)]
pub struct SyntheticWeather {
    cells: Vec<RainCell>,
}

impl SyntheticWeather {
    /// Truth with no cells (clear).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rain cell.
    pub fn add_cell(&mut self, cell: RainCell) {
        self.cells.push(cell);
    }

    /// Builder-style [`Self::add_cell`].
    pub fn with_cell(mut self, cell: RainCell) -> Self {
        self.add_cell(cell);
        self
    }

    /// The configured cells.
    pub fn cells(&self) -> &[RainCell] {
        &self.cells
    }
}

impl WeatherField for SyntheticWeather {
    fn sample(&self, pos: &GeoPoint, t_ms: u64) -> WeatherSample {
        let mut s = WeatherSample::default();
        for c in &self.cells {
            s.rain_mm_h += c.rain_at(pos, t_ms);
            s.cloud_lwc_g_m3 = s.cloud_lwc_g_m3.max(c.cloud_at(pos, t_ms));
        }
        s
    }
}

/// A degraded view of truth, standing in for an ECMWF forecast.
///
/// The forecast sees every cell, but displaced by `position_error_m`
/// along its drift direction, shifted `timing_error_ms` in time, and
/// with intensity scaled by `intensity_scale`. Setting all errors to
/// zero yields a perfect forecast (useful as an experiment control).
#[derive(Debug, Clone)]
pub struct ForecastView {
    truth: SyntheticWeather,
    /// Horizontal displacement applied to every cell, meters.
    pub position_error_m: f64,
    /// Forecast timing offset, ms (cells appear this much later).
    pub timing_error_ms: i64,
    /// Multiplier on predicted intensity.
    pub intensity_scale: f64,
}

impl ForecastView {
    /// Wrap `truth` with the given error parameters.
    pub fn new(
        truth: SyntheticWeather,
        position_error_m: f64,
        timing_error_ms: i64,
        intensity_scale: f64,
    ) -> Self {
        Self {
            truth,
            position_error_m,
            timing_error_ms,
            intensity_scale,
        }
    }

    /// A perfect forecast of `truth`.
    pub fn perfect(truth: SyntheticWeather) -> Self {
        Self::new(truth, 0.0, 0, 1.0)
    }
}

impl WeatherField for ForecastView {
    fn sample(&self, pos: &GeoPoint, t_ms: u64) -> WeatherSample {
        // Query the truth at a displaced position/time to model error:
        // equivalent to every cell being mis-placed by the same offset.
        let shifted_t = if self.timing_error_ms >= 0 {
            t_ms.saturating_sub(self.timing_error_ms as u64)
        } else {
            t_ms + (-self.timing_error_ms) as u64
        };
        let shifted_pos = pos.offset(self.position_error_m, 0.0, 0.0);
        let s = self.truth.sample(&shifted_pos, shifted_t);
        WeatherSample {
            rain_mm_h: s.rain_mm_h * self.intensity_scale,
            cloud_lwc_g_m3: s.cloud_lwc_g_m3 * self.intensity_scale,
        }
    }
}

/// A rain gauge at a fixed site: reads truth exactly, but only at its
/// own location. "Preferring weather data from ground station sensors
/// ... proved more accurate than relying on weather forecasts alone"
/// (§5).
#[derive(Debug, Clone, Copy)]
pub struct RainGauge {
    /// Gauge location.
    pub site: GeoPoint,
    /// Radius within which the gauge reading is considered
    /// representative, meters.
    pub representative_radius_m: f64,
}

impl RainGauge {
    /// Read the gauge at `t_ms` against a truth field.
    pub fn read<F: WeatherField>(&self, truth: &F, t_ms: u64) -> f64 {
        truth.sample(&self.site, t_ms).rain_mm_h
    }

    /// Whether `pos` is close enough for the gauge to speak for it.
    pub fn covers(&self, pos: &GeoPoint) -> bool {
        self.site
            .ground_distance_m(&GeoPoint::new(pos.lat_deg, pos.lon_deg, self.site.alt_m))
            <= self.representative_radius_m
    }
}

/// A precomputed 4-D (lat, lon, alt, time) grid over a weather field
/// with quadrilinear interpolation — the paper's attenuation-volume
/// cache (§3.1). Sampling the grid is much cheaper than evaluating
/// many rain cells, at the cost of resolution ("coarse temporal &
/// spatial granularity of weather inputs" is model-error source #2 in
/// §5 — this type *is* that error source, measurably).
#[derive(Debug, Clone)]
pub struct WeatherGrid {
    lat0: f64,
    lon0: f64,
    dlat: f64,
    dlon: f64,
    alt0: f64,
    dalt: f64,
    t0_ms: u64,
    dt_ms: u64,
    nlat: usize,
    nlon: usize,
    nalt: usize,
    nt: usize,
    /// Row-major [t][alt][lat][lon] rain then cloud.
    rain: Vec<f32>,
    cloud: Vec<f32>,
}

impl WeatherGrid {
    /// Sample `field` over a box `[lat0, lat0+dlat*(nlat-1)] × ...`
    /// at the given resolutions.
    #[allow(clippy::too_many_arguments)]
    pub fn build<F: WeatherField>(
        field: &F,
        lat0: f64,
        dlat: f64,
        nlat: usize,
        lon0: f64,
        dlon: f64,
        nlon: usize,
        alt0: f64,
        dalt: f64,
        nalt: usize,
        t0_ms: u64,
        dt_ms: u64,
        nt: usize,
    ) -> Self {
        assert!(
            nlat >= 2 && nlon >= 2 && nalt >= 2 && nt >= 2,
            "grid needs ≥2 points per axis"
        );
        let mut rain = Vec::with_capacity(nlat * nlon * nalt * nt);
        let mut cloud = Vec::with_capacity(nlat * nlon * nalt * nt);
        for it in 0..nt {
            let t = t0_ms + dt_ms * it as u64;
            for ia in 0..nalt {
                let alt = alt0 + dalt * ia as f64;
                for ilat in 0..nlat {
                    let lat = lat0 + dlat * ilat as f64;
                    for ilon in 0..nlon {
                        let lon = lon0 + dlon * ilon as f64;
                        let s = field.sample(&GeoPoint::new(lat, lon, alt), t);
                        rain.push(s.rain_mm_h as f32);
                        cloud.push(s.cloud_lwc_g_m3 as f32);
                    }
                }
            }
        }
        WeatherGrid {
            lat0,
            lon0,
            dlat,
            dlon,
            alt0,
            dalt,
            t0_ms,
            dt_ms,
            nlat,
            nlon,
            nalt,
            nt,
            rain,
            cloud,
        }
    }

    #[inline]
    fn idx(&self, it: usize, ia: usize, ilat: usize, ilon: usize) -> usize {
        ((it * self.nalt + ia) * self.nlat + ilat) * self.nlon + ilon
    }

    /// Fractional index along one axis, clamped to the grid.
    #[inline]
    fn frac(v: f64, v0: f64, dv: f64, n: usize) -> (usize, f64) {
        let x = ((v - v0) / dv).clamp(0.0, (n - 1) as f64);
        let i = (x.floor() as usize).min(n - 2);
        (i, x - i as f64)
    }
}

impl WeatherField for WeatherGrid {
    fn sample(&self, pos: &GeoPoint, t_ms: u64) -> WeatherSample {
        let (ilat, flat) = Self::frac(pos.lat_deg, self.lat0, self.dlat, self.nlat);
        let (ilon, flon) = Self::frac(pos.lon_deg, self.lon0, self.dlon, self.nlon);
        let (ia, fa) = Self::frac(pos.alt_m, self.alt0, self.dalt, self.nalt);
        let (it, ft) = Self::frac(t_ms as f64, self.t0_ms as f64, self.dt_ms as f64, self.nt);
        let mut rain = 0.0f64;
        let mut cloud = 0.0f64;
        for (dt, wt) in [(0usize, 1.0 - ft), (1, ft)] {
            for (da, wa) in [(0usize, 1.0 - fa), (1, fa)] {
                for (dlat, wlat) in [(0usize, 1.0 - flat), (1, flat)] {
                    for (dlon, wlon) in [(0usize, 1.0 - flon), (1, flon)] {
                        let w = wt * wa * wlat * wlon;
                        if w == 0.0 {
                            continue;
                        }
                        let i = self.idx(it + dt, ia + da, ilat + dlat, ilon + dlon);
                        rain += w * self.rain[i] as f64;
                        cloud += w * self.cloud[i] as f64;
                    }
                }
            }
        }
        WeatherSample {
            rain_mm_h: rain,
            cloud_lwc_g_m3: cloud,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cell() -> RainCell {
        RainCell {
            center: GeoPoint::new(-1.0, 36.8, 0.0),
            vel_east_mps: 8.0,
            vel_north_mps: 0.0,
            radius_m: 10_000.0,
            peak_rain_mm_h: 40.0,
            start_ms: 0,
            end_ms: 6 * 3600 * 1000,
        }
    }

    #[test]
    fn clear_sky_is_always_dry() {
        let w = ClearSky;
        let s = w.sample(&GeoPoint::new(0.0, 0.0, 100.0), 12345);
        assert_eq!(s, WeatherSample::default());
    }

    #[test]
    fn cell_peak_at_center_midlife() {
        let c = test_cell();
        let mid = 3 * 3600 * 1000;
        let center = c.center_at(mid);
        let r = c.rain_at(&GeoPoint::new(center.lat_deg, center.lon_deg, 100.0), mid);
        assert!((r - 40.0).abs() < 0.5, "got {r}");
    }

    #[test]
    fn cell_rain_decays_with_distance() {
        let c = test_cell();
        let mid = 3 * 3600 * 1000;
        let center = c.center_at(mid);
        let near = c.rain_at(&GeoPoint::new(center.lat_deg, center.lon_deg, 100.0), mid);
        let far = c.rain_at(&center.offset(30_000.0, 0.0, 0.0), mid);
        assert!(far < near / 10.0);
    }

    #[test]
    fn no_rain_above_rain_height() {
        let c = test_cell();
        let mid = 3 * 3600 * 1000;
        let center = c.center_at(mid);
        let high = GeoPoint::new(center.lat_deg, center.lon_deg, 17_000.0);
        assert_eq!(c.rain_at(&high, mid), 0.0);
    }

    #[test]
    fn cell_inactive_outside_time_window() {
        let c = test_cell();
        let p = GeoPoint::new(-1.0, 36.8, 100.0);
        assert_eq!(c.rain_at(&p, c.end_ms + 1), 0.0);
        let late = RainCell {
            start_ms: 1000,
            ..c
        };
        assert_eq!(late.rain_at(&p, 0), 0.0);
    }

    #[test]
    fn cell_drifts_east() {
        let c = test_cell();
        let t = 3600 * 1000; // 1 h at 8 m/s → 28.8 km east
        let moved = c.center_at(t);
        let d = c.center.ground_distance_m(&moved);
        assert!((d - 28_800.0).abs() < 300.0, "got {d}");
        assert!(moved.lon_deg > c.center.lon_deg);
    }

    #[test]
    fn perfect_forecast_matches_truth() {
        let truth = SyntheticWeather::new().with_cell(test_cell());
        let fc = ForecastView::perfect(truth.clone());
        let p = GeoPoint::new(-1.05, 36.9, 200.0);
        let t = 2 * 3600 * 1000;
        let a = truth.sample(&p, t);
        let b = fc.sample(&p, t);
        assert!((a.rain_mm_h - b.rain_mm_h).abs() < 1e-9);
    }

    #[test]
    fn displaced_forecast_misses_the_cell_peak() {
        let truth = SyntheticWeather::new().with_cell(test_cell());
        let fc = ForecastView::new(truth.clone(), 25_000.0, 0, 1.0);
        let mid = 3 * 3600 * 1000;
        let center = test_cell().center_at(mid);
        let p = GeoPoint::new(center.lat_deg, center.lon_deg, 100.0);
        let t_truth = truth.sample(&p, mid).rain_mm_h;
        let t_fc = fc.sample(&p, mid).rain_mm_h;
        assert!(t_fc < t_truth / 3.0, "forecast {t_fc} vs truth {t_truth}");
    }

    #[test]
    fn gauge_reads_truth_at_site() {
        let truth = SyntheticWeather::new().with_cell(test_cell());
        let mid = 3 * 3600 * 1000;
        let center = test_cell().center_at(mid);
        let g = RainGauge {
            site: GeoPoint::new(center.lat_deg, center.lon_deg, 1600.0),
            representative_radius_m: 20_000.0,
        };
        let r = g.read(&truth, mid);
        assert!(r > 30.0);
        assert!(g.covers(&g.site.offset(10_000.0, 0.0, 0.0)));
        assert!(!g.covers(&g.site.offset(50_000.0, 0.0, 0.0)));
    }

    #[test]
    fn grid_interpolation_close_to_truth_at_grid_scale() {
        let truth = SyntheticWeather::new().with_cell(test_cell());
        let grid = WeatherGrid::build(
            &truth, -2.0, 0.05, 41, // lat: −2..0 in 0.05° steps (~5.5 km)
            36.0, 0.05, 41, // lon: 36..38
            0.0, 2_000.0, 6, // alt: 0..10 km
            0, 600_000, 37, // time: 0..6 h in 10-min steps
        );
        let mid = 3 * 3600 * 1000;
        let center = test_cell().center_at(mid);
        let p = GeoPoint::new(center.lat_deg, center.lon_deg, 500.0);
        let t = truth.sample(&p, mid).rain_mm_h;
        let g = grid.sample(&p, mid).rain_mm_h;
        assert!((t - g).abs() < 0.15 * t.max(1.0), "truth {t} grid {g}");
    }

    #[test]
    fn grid_clamps_outside_box() {
        let truth = SyntheticWeather::new().with_cell(test_cell());
        let grid = WeatherGrid::build(
            &truth, -2.0, 0.1, 21, 36.0, 0.1, 21, 0.0, 2_000.0, 6, 0, 600_000, 10,
        );
        // Far outside the box: clamped sample, finite values.
        let s = grid.sample(&GeoPoint::new(50.0, -120.0, 100.0), 99_999_999_999);
        assert!(s.rain_mm_h.is_finite() && s.rain_mm_h >= 0.0);
    }

    #[test]
    fn itu_seasonal_constant_below_rain_height() {
        let itu = ItuSeasonal::tropical_wet();
        let low = itu.sample(&GeoPoint::new(0.0, 36.0, 1_000.0), 0);
        let high = itu.sample(&GeoPoint::new(0.0, 36.0, 18_000.0), 0);
        assert!(low.rain_mm_h > 0.0 && low.cloud_lwc_g_m3 > 0.0);
        assert_eq!(high.rain_mm_h, 0.0);
        assert_eq!(high.cloud_lwc_g_m3, 0.0);
    }
}
