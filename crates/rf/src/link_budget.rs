//! End-to-end candidate-link evaluation: the RF half of the paper's
//! Link Evaluator (§3.1).
//!
//! For a transceiver pair at a given instant we integrate attenuation
//! along the transmission vector (free-space loss plus gaseous, rain
//! and cloud absorption sampled along the slant path), apply antenna
//! gains and pointing loss, and map the resulting SNR to the highest
//! bitrate whose required margin is met. Links whose margin lands
//! within [`RadioParams::marginal_band_db`] *below* acceptable are
//! annotated [`LinkQuality::Marginal`]: "links just below the
//! acceptable margin were retained and annotated as marginal.
//! Marginal links were penalized during solving, but attempted when
//! no acceptable links were available" (per §3.1 of the paper).

use crate::antenna::AntennaPattern;
use crate::weather::WeatherField;
use crate::{atmosphere, fspl, rain};
use tssdn_geo::GeoPoint;

/// Adaptive modulation/coding table: `(min SNR dB, bitrate bps)`,
/// highest rate first. E-band radios were "each capable of up to
/// 1 Gbps" (§2.2).
pub const BITRATE_TABLE: &[(f64, u64)] = &[
    (22.0, 1_000_000_000),
    (19.0, 800_000_000),
    (16.0, 600_000_000),
    (13.0, 400_000_000),
    (10.0, 200_000_000),
    (7.0, 100_000_000),
    (4.0, 50_000_000),
];

/// Minimum SNR at which any link can close (lowest table entry).
pub fn min_usable_snr_db() -> f64 {
    BITRATE_TABLE.last().expect("non-empty table").0
}

/// The MCS capacity ladder keyed by *link margin* — the `margin_db`
/// field of [`LinkBudgetReport`], i.e. dB above the minimum-usable SNR
/// ([`min_usable_snr_db`]): `(min margin dB, capacity Mbps)`, highest
/// rate first.
///
/// This is [`BITRATE_TABLE`] re-expressed in the data plane's
/// vocabulary. Planning asks "what rate closes with the *required*
/// margin of headroom?" (that is `LinkBudgetReport::bitrate_bps`);
/// the established radio's adaptive coding instead runs at the best
/// rate the *current* SNR supports, with no headroom reserved — so an
/// E-band link carries up to 1 Gbps at full margin and sheds MCS steps
/// as weather fade erodes the margin, down to 50 Mbps at the lowest
/// step and zero once the link cannot close at all.
pub const MCS_CAPACITY_TABLE: &[(f64, f64)] = &[
    (18.0, 1000.0),
    (15.0, 800.0),
    (12.0, 600.0),
    (9.0, 400.0),
    (6.0, 200.0),
    (3.0, 100.0),
    (0.0, 50.0),
];

/// Instantaneous data-plane capacity of an established link whose
/// current margin is `margin_db`, in Mbps.
///
/// Looks up the highest [`MCS_CAPACITY_TABLE`] step the margin meets;
/// a negative margin (the link cannot close) carries nothing. The
/// traffic engine derives per-link fluid capacities from true link
/// margins through this one function, so weather fade on a path shows
/// up as MCS down-steps exactly where the attenuation integral says it
/// should.
pub fn capacity_mbps(margin_db: f64) -> f64 {
    MCS_CAPACITY_TABLE
        .iter()
        .find(|(min_margin, _)| margin_db >= *min_margin)
        .map(|&(_, mbps)| mbps)
        .unwrap_or(0.0)
}

/// Radio/link-evaluation parameters for one RF band configuration.
#[derive(Debug, Clone, Copy)]
pub struct RadioParams {
    /// Carrier frequency, GHz.
    pub freq_ghz: f64,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Channel bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Required margin above the MCS threshold for a link to be
    /// "acceptable" (a configuration parameter per §3.1).
    pub required_margin_db: f64,
    /// Width of the marginal band below acceptable, dB. The paper
    /// "deprioritized links within 5 dB of the minimum signal
    /// strength" (§5).
    pub marginal_band_db: f64,
    /// Fixed implementation losses (radome, feed, polarization), dB.
    pub implementation_loss_db: f64,
}

impl RadioParams {
    /// Loon-class E-band low channel (71–76 GHz).
    pub fn e_band_low() -> Self {
        RadioParams {
            freq_ghz: 73.5,
            tx_power_dbm: 25.0,
            bandwidth_hz: 1.0e9,
            noise_figure_db: 6.0,
            required_margin_db: 3.0,
            marginal_band_db: 5.0,
            implementation_loss_db: 2.0,
        }
    }

    /// Loon-class E-band high channel (81–86 GHz).
    pub fn e_band_high() -> Self {
        RadioParams {
            freq_ghz: 83.5,
            ..Self::e_band_low()
        }
    }

    /// Receiver noise floor, dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        crate::noise_floor_dbm(self.bandwidth_hz, self.noise_figure_db)
    }
}

/// Where each dB of path attenuation went — kept so telemetry and the
/// model-error experiments (E6, E11) can attribute loss per source,
/// like the artifact's Transceiver Link Reports record "the sources of
/// attenuation".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AttenuationBreakdown {
    /// Free-space path loss, dB.
    pub fspl_db: f64,
    /// Integrated gaseous absorption, dB.
    pub gaseous_db: f64,
    /// Integrated rain attenuation, dB.
    pub rain_db: f64,
    /// Integrated cloud attenuation, dB.
    pub cloud_db: f64,
}

impl AttenuationBreakdown {
    /// Total attenuation, dB.
    pub fn total_db(&self) -> f64 {
        self.fspl_db + self.gaseous_db + self.rain_db + self.cloud_db
    }

    /// Attenuation from weather-dependent sources only, dB.
    pub fn moisture_db(&self) -> f64 {
        self.rain_db + self.cloud_db
    }
}

/// Whether a candidate link meets margin requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkQuality {
    /// Margin at or above the required level.
    Acceptable,
    /// Within the marginal band below required margin: penalized but
    /// attemptable.
    Marginal,
    /// Cannot close at any supported bitrate.
    Infeasible,
}

/// The output of evaluating one transceiver pair at one instant: the
/// modelled bitrate and margin the Solver consumes (Appendix B's
/// `b_modelled`, `m_modelled`).
#[derive(Debug, Clone, Copy)]
pub struct LinkBudgetReport {
    /// Received signal power, dBm.
    pub rx_power_dbm: f64,
    /// Signal-to-noise ratio, dB.
    pub snr_db: f64,
    /// Highest supportable bitrate with the required margin, bps
    /// (0 when infeasible).
    pub bitrate_bps: u64,
    /// Margin above the minimum-bitrate threshold, dB. Negative when
    /// the link cannot close at all.
    pub margin_db: f64,
    /// Quality classification for the Solver.
    pub quality: LinkQuality,
    /// Per-source attenuation attribution.
    pub attenuation: AttenuationBreakdown,
}

/// Number of integration steps along the slant path. 32 samples over a
/// ≤700 km path gives ≤22 km steps; attenuating structures (rain
/// cells) are ≥10 km across so this resolves them while keeping the
/// evaluator fast enough to run over the whole candidate set.
const PATH_STEPS: usize = 32;

/// Integrate weather + gaseous attenuation along the path `a → b` at
/// time `t_ms` against `weather`.
pub fn path_attenuation_db<W: WeatherField>(
    a: &GeoPoint,
    b: &GeoPoint,
    params: &RadioParams,
    weather: &W,
    t_ms: u64,
) -> AttenuationBreakdown {
    let dist_m = a.slant_range_m(b);
    let mut out = AttenuationBreakdown {
        fspl_db: fspl::free_space_path_loss_db(dist_m, params.freq_ghz),
        ..Default::default()
    };
    let step_km = dist_m / 1000.0 / PATH_STEPS as f64;
    for i in 0..PATH_STEPS {
        let f = (i as f64 + 0.5) / PATH_STEPS as f64;
        // Linear blend in geodetic space is adequate at these spans.
        let p = GeoPoint::new(
            a.lat_deg + f * (b.lat_deg - a.lat_deg),
            a.lon_deg + f * (b.lon_deg - a.lon_deg),
            a.alt_m + f * (b.alt_m - a.alt_m),
        );
        out.gaseous_db += atmosphere::gaseous_db_per_km(params.freq_ghz, p.alt_m) * step_km;
        let w = weather.sample(&p, t_ms);
        out.rain_db += rain::rain_db_per_km(params.freq_ghz, w.rain_mm_h) * step_km;
        out.cloud_db += atmosphere::cloud_db_per_km(params.freq_ghz, w.cloud_lwc_g_m3) * step_km;
    }
    out
}

/// Evaluate the full link budget for a transceiver pair.
///
/// `tx_offset_deg` / `rx_offset_deg` are each antenna's pointing error
/// from boresight-on-target; 0 for a perfectly tracked link, the
/// side-lobe offset for a mis-locked one.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_link<W: WeatherField>(
    tx_pos: &GeoPoint,
    rx_pos: &GeoPoint,
    params: &RadioParams,
    tx_pattern: &AntennaPattern,
    rx_pattern: &AntennaPattern,
    tx_offset_deg: f64,
    rx_offset_deg: f64,
    weather: &W,
    t_ms: u64,
) -> LinkBudgetReport {
    let attenuation = path_attenuation_db(tx_pos, rx_pos, params, weather, t_ms);
    evaluate_with_attenuation(
        params,
        tx_pattern.gain_dbi(tx_offset_deg),
        rx_pattern.gain_dbi(rx_offset_deg),
        attenuation,
    )
}

/// Finish a link budget from a precomputed path attenuation. The
/// attenuation depends only on the endpoints and band, so callers
/// evaluating many antenna pairings of the same platform pair (the
/// Link Evaluator's inner loop) compute it once and call this per
/// pairing.
pub fn evaluate_with_attenuation(
    params: &RadioParams,
    tx_gain_dbi: f64,
    rx_gain_dbi: f64,
    attenuation: AttenuationBreakdown,
) -> LinkBudgetReport {
    let rx_power_dbm = params.tx_power_dbm + tx_gain_dbi + rx_gain_dbi
        - attenuation.total_db()
        - params.implementation_loss_db;
    let snr_db = rx_power_dbm - params.noise_floor_dbm();
    let margin_db = snr_db - min_usable_snr_db();

    // Highest bitrate whose threshold + required margin the SNR meets.
    let bitrate_bps = BITRATE_TABLE
        .iter()
        .find(|(thr, _)| snr_db >= thr + params.required_margin_db)
        .map(|&(_, b)| b)
        .unwrap_or(0);

    let quality = if margin_db >= params.required_margin_db {
        LinkQuality::Acceptable
    } else if margin_db >= params.required_margin_db - params.marginal_band_db {
        LinkQuality::Marginal
    } else {
        LinkQuality::Infeasible
    };

    LinkBudgetReport {
        rx_power_dbm,
        snr_db,
        bitrate_bps,
        margin_db,
        quality,
        attenuation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weather::{ClearSky, RainCell, SyntheticWeather};

    fn balloon_at(lon: f64) -> GeoPoint {
        GeoPoint::new(0.0, lon, 18_000.0)
    }

    fn eval_b2b<W: WeatherField>(dist_km: f64, weather: &W) -> LinkBudgetReport {
        let a = balloon_at(36.0);
        let b = balloon_at(36.0 + dist_km / 111.2);
        let p = RadioParams::e_band_low();
        let pat = AntennaPattern::e_band_balloon();
        evaluate_link(&a, &b, &p, &pat, &pat, 0.0, 0.0, weather, 0)
    }

    #[test]
    fn b2b_at_500km_closes_at_high_bitrate() {
        let r = eval_b2b(500.0, &ClearSky);
        assert_eq!(r.quality, LinkQuality::Acceptable);
        assert!(r.bitrate_bps >= 200_000_000, "got {} bps", r.bitrate_bps);
    }

    #[test]
    fn b2b_close_range_hits_1gbps() {
        let r = eval_b2b(100.0, &ClearSky);
        assert_eq!(r.bitrate_bps, 1_000_000_000);
    }

    #[test]
    fn b2b_at_700km_still_feasible_but_slower() {
        let r = eval_b2b(700.0, &ClearSky);
        assert_ne!(
            r.quality,
            LinkQuality::Infeasible,
            "paper: max B2B range 700+ km"
        );
        let near = eval_b2b(300.0, &ClearSky);
        assert!(r.bitrate_bps < near.bitrate_bps);
    }

    #[test]
    fn b2b_attenuation_is_weather_free_at_altitude() {
        let r = eval_b2b(500.0, &ClearSky);
        assert!(
            r.attenuation.gaseous_db < 1.0,
            "stratospheric path: {}",
            r.attenuation.gaseous_db
        );
        assert_eq!(r.attenuation.rain_db, 0.0);
    }

    fn eval_b2g<W: WeatherField>(ground_km: f64, weather: &W) -> LinkBudgetReport {
        let gs = GeoPoint::new(0.0, 36.0, 1_600.0);
        let b = GeoPoint::new(0.0, 36.0 + ground_km / 111.2, 18_000.0);
        let p = RadioParams::e_band_low();
        let gs_pat = AntennaPattern::e_band_ground_station();
        let b_pat = AntennaPattern::e_band_balloon();
        evaluate_link(&gs, &b, &p, &gs_pat, &b_pat, 0.0, 0.0, weather, 0)
    }

    #[test]
    fn b2g_at_130km_closes_in_clear_weather() {
        // "ground stations were able to reliably establish B2G links
        // with balloons at a slant-range of 130 km under good weather"
        let r = eval_b2g(130.0, &ClearSky);
        assert_eq!(r.quality, LinkQuality::Acceptable);
        assert!(r.bitrate_bps >= 400_000_000);
    }

    #[test]
    fn b2g_maintainable_at_250km() {
        let r = eval_b2g(250.0, &ClearSky);
        assert_ne!(
            r.quality,
            LinkQuality::Infeasible,
            "paper: maintained to 250+ km"
        );
    }

    #[test]
    fn rain_cell_on_path_degrades_b2g() {
        let clear = eval_b2g(150.0, &ClearSky);
        // Park a thunderstorm near the ground station.
        let storm = SyntheticWeather::new().with_cell(RainCell {
            center: GeoPoint::new(0.0, 36.2, 0.0),
            vel_east_mps: 0.0,
            vel_north_mps: 0.0,
            radius_m: 15_000.0,
            peak_rain_mm_h: 40.0,
            start_ms: 0,
            end_ms: u64::MAX / 2,
        });
        let mid = u64::MAX / 4; // well inside the ramped window
        let gs = GeoPoint::new(0.0, 36.0, 1_600.0);
        let b = GeoPoint::new(0.0, 36.0 + 150.0 / 111.2, 18_000.0);
        let p = RadioParams::e_band_low();
        let gs_pat = AntennaPattern::e_band_ground_station();
        let b_pat = AntennaPattern::e_band_balloon();
        let r = evaluate_link(&gs, &b, &p, &gs_pat, &b_pat, 0.0, 0.0, &storm, mid);
        assert!(
            r.attenuation.rain_db > 5.0,
            "rain on path: {:?}",
            r.attenuation
        );
        assert!(r.snr_db < clear.snr_db - 5.0);
    }

    #[test]
    fn sidelobe_lock_costs_14db() {
        let pat = AntennaPattern::e_band_balloon();
        let aligned = eval_b2b(300.0, &ClearSky);
        let a = balloon_at(36.0);
        let b = balloon_at(36.0 + 300.0 / 111.2);
        let p = RadioParams::e_band_low();
        let mislocked = evaluate_link(
            &a,
            &b,
            &p,
            &pat,
            &pat,
            pat.first_sidelobe_offset_deg(),
            0.0,
            &ClearSky,
            0,
        );
        let delta = aligned.rx_power_dbm - mislocked.rx_power_dbm;
        assert!((delta - 14.0).abs() < 0.5, "got {delta}");
    }

    #[test]
    fn marginal_band_classification() {
        // Find a range where quality transitions; verify the marginal
        // band appears between acceptable and infeasible.
        let mut saw = (false, false, false);
        // Sweep well past physical LOS range: the budget function is
        // pure RF; geometry pruning is tssdn-geo's job.
        for km in (400..5000).step_by(20) {
            let r = eval_b2b(km as f64, &ClearSky);
            match r.quality {
                LinkQuality::Acceptable => saw.0 = true,
                LinkQuality::Marginal => {
                    saw.1 = true;
                    assert!(saw.0, "marginal appears after acceptable as range grows");
                }
                LinkQuality::Infeasible => {
                    saw.2 = true;
                    assert!(saw.1, "infeasible appears after marginal");
                }
            }
        }
        assert!(
            saw.0 && saw.1 && saw.2,
            "all three classes observed: {saw:?}"
        );
    }

    #[test]
    fn report_margin_consistent_with_snr() {
        let r = eval_b2b(500.0, &ClearSky);
        assert!((r.margin_db - (r.snr_db - min_usable_snr_db())).abs() < 1e-9);
        assert!(
            (r.snr_db - (r.rx_power_dbm - RadioParams::e_band_low().noise_floor_dbm())).abs()
                < 1e-9
        );
    }

    #[test]
    fn capacity_table_is_bitrate_table_in_margin_units() {
        // The MCS capacity ladder must stay in lock-step with the
        // planning bitrate table: same number of steps, each keyed by
        // (SNR threshold − minimum-usable SNR) and carrying the same
        // rate in Mbps.
        assert_eq!(MCS_CAPACITY_TABLE.len(), BITRATE_TABLE.len());
        for (&(margin, mbps), &(thr, bps)) in MCS_CAPACITY_TABLE.iter().zip(BITRATE_TABLE.iter()) {
            assert!((margin - (thr - min_usable_snr_db())).abs() < 1e-12);
            assert!((mbps - bps as f64 / 1e6).abs() < 1e-12);
        }
    }

    #[test]
    fn capacity_at_threshold_boundaries() {
        // Exactly at a step boundary the higher rate is granted; an
        // epsilon below it is not.
        for &(min_margin, mbps) in MCS_CAPACITY_TABLE {
            assert_eq!(capacity_mbps(min_margin), mbps, "at boundary {min_margin}");
            let below = capacity_mbps(min_margin - 1e-9);
            assert!(
                below < mbps,
                "margin {min_margin}-ε must not grant {mbps} Mbps"
            );
        }
    }

    #[test]
    fn capacity_extremes() {
        // Negative margin: the link cannot close; nothing flows.
        assert_eq!(capacity_mbps(-0.001), 0.0);
        assert_eq!(capacity_mbps(-30.0), 0.0);
        // Capped at the 1 Gbps E-band radio limit however much margin.
        assert_eq!(capacity_mbps(18.0), 1000.0);
        assert_eq!(capacity_mbps(60.0), 1000.0);
        // Bottom step: barely-closing links crawl at 50 Mbps.
        assert_eq!(capacity_mbps(0.0), 50.0);
        assert_eq!(capacity_mbps(2.999), 50.0);
    }

    #[test]
    fn capacity_degrades_monotonically_with_fade() {
        let mut last = f64::INFINITY;
        for tenth in (-50..250).rev() {
            let c = capacity_mbps(tenth as f64 / 10.0);
            assert!(c <= last, "capacity must fall as margin fades");
            last = c;
        }
    }

    #[test]
    fn bitrate_requires_margin_above_threshold() {
        // SNR exactly at a table threshold should NOT grant that rate
        // (needs threshold + required margin).
        let p = RadioParams::e_band_low();
        for &(thr, rate) in BITRATE_TABLE {
            // Construct: snr a hair below thr + margin.
            let snr = thr + p.required_margin_db - 0.01;
            let got = BITRATE_TABLE
                .iter()
                .find(|(t, _)| snr >= t + p.required_margin_db)
                .map(|&(_, b)| b)
                .unwrap_or(0);
            assert!(got < rate, "snr {snr} must not grant {rate}");
        }
    }
}
