//! Free-space path loss.

/// Free-space path loss in dB for a path of `distance_m` meters at
/// `freq_ghz` GHz: `FSPL = 92.45 + 20·log10(f_GHz) + 20·log10(d_km)`.
///
/// Distances below one meter are clamped to one meter so degenerate
/// geometry (co-located test platforms) cannot produce negative loss
/// at the frequencies we care about.
pub fn free_space_path_loss_db(distance_m: f64, freq_ghz: f64) -> f64 {
    let d_km = (distance_m.max(1.0)) / 1000.0;
    92.45 + 20.0 * freq_ghz.log10() + 20.0 * d_km.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_textbook_value_at_73ghz_100km() {
        // 92.45 + 20log10(73) + 20log10(100) = 92.45 + 37.266 + 40 = 169.72
        let l = free_space_path_loss_db(100_000.0, 73.0);
        assert!((l - 169.716).abs() < 0.01, "got {l}");
    }

    #[test]
    fn doubling_distance_adds_6db() {
        let a = free_space_path_loss_db(100_000.0, 73.0);
        let b = free_space_path_loss_db(200_000.0, 73.0);
        assert!((b - a - 6.0206).abs() < 0.001);
    }

    #[test]
    fn doubling_frequency_adds_6db() {
        let a = free_space_path_loss_db(100_000.0, 36.5);
        let b = free_space_path_loss_db(100_000.0, 73.0);
        assert!((b - a - 6.0206).abs() < 0.001);
    }

    #[test]
    fn clamps_tiny_distances() {
        let l = free_space_path_loss_db(0.0, 73.0);
        assert!(l.is_finite());
        assert_eq!(l, free_space_path_loss_db(1.0, 73.0));
    }
}
