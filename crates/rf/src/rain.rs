//! Rain attenuation: the power-law specific-attenuation model of
//! ITU-R P.838, which the paper used for "moisture attenuation"
//! (§3.1).
//!
//! `γ_rain = k · R^α` dB/km where `R` is rain rate in mm/h and `k, α`
//! depend on frequency. E-band transmissions "attenuate in the
//! presence of atmospheric moisture such as rain, clouds, or fog ...
//! significantly more detrimental than the rain fade of Ka and Ku
//! bands" (§2.2) — the coefficients below reproduce that ordering.

/// Power-law coefficients `(k, alpha)` for `γ = k · R^α`.
///
/// Values are P.838-style horizontal-polarization fits at the band
/// centers we model. E band's `k` is ~20× Ku band's, which is exactly
/// the Ka/Ku-vs-E-band brittleness contrast the paper highlights.
pub fn rain_coefficients(freq_ghz: f64) -> (f64, f64) {
    // Piecewise-log-linear interpolation through P.838 anchor points.
    const ANCHORS: &[(f64, f64, f64)] = &[
        // (freq GHz, k, alpha)
        (12.0, 0.0188, 1.217),
        (20.0, 0.0751, 1.099),
        (30.0, 0.187, 1.021),
        (40.0, 0.350, 0.939),
        (50.0, 0.536, 0.873),
        (60.0, 0.707, 0.826),
        (73.0, 0.896, 0.793),
        (86.0, 1.06, 0.753),
        (100.0, 1.12, 0.743),
    ];
    let f = freq_ghz.clamp(ANCHORS[0].0, ANCHORS[ANCHORS.len() - 1].0);
    for w in ANCHORS.windows(2) {
        let (f0, k0, a0) = w[0];
        let (f1, k1, a1) = w[1];
        if f <= f1 {
            let t = (f.ln() - f0.ln()) / (f1.ln() - f0.ln());
            let k = (k0.ln() + t * (k1.ln() - k0.ln())).exp();
            let a = a0 + t * (a1 - a0);
            return (k, a);
        }
    }
    let last = ANCHORS[ANCHORS.len() - 1];
    (last.1, last.2)
}

/// Specific rain attenuation, dB/km, at `freq_ghz` for rain rate
/// `rain_mm_h`.
pub fn rain_db_per_km(freq_ghz: f64, rain_mm_h: f64) -> f64 {
    if rain_mm_h <= 0.0 {
        return 0.0;
    }
    let (k, alpha) = rain_coefficients(freq_ghz);
    k * rain_mm_h.powf(alpha)
}

/// Altitude above which precipitation no longer attenuates (the rain
/// height / melting layer). Tropical value per ITU-R P.839.
pub const RAIN_HEIGHT_M: f64 = 5_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_interpolate_between_anchors() {
        let (k73, _) = rain_coefficients(73.0);
        assert!((k73 - 0.896).abs() < 1e-9, "anchor exact: {k73}");
        let (k65, a65) = rain_coefficients(65.0);
        assert!(k65 > 0.707 && k65 < 0.896);
        assert!(a65 < 0.826 && a65 > 0.793);
    }

    #[test]
    fn e_band_much_worse_than_ku_band() {
        // 20 mm/h moderate tropical rain.
        let ku = rain_db_per_km(12.0, 20.0);
        let e = rain_db_per_km(73.0, 20.0);
        assert!(e / ku > 8.0, "E band {e} dB/km vs Ku {ku} dB/km");
    }

    #[test]
    fn heavy_tropical_rain_kills_e_band() {
        // 50 mm/h thunderstorm: > 15 dB/km at 73 GHz.
        let g = rain_db_per_km(73.0, 50.0);
        assert!(g > 15.0, "got {g}");
    }

    #[test]
    fn no_rain_no_attenuation() {
        assert_eq!(rain_db_per_km(73.0, 0.0), 0.0);
        assert_eq!(rain_db_per_km(73.0, -3.0), 0.0);
    }

    #[test]
    fn attenuation_monotonic_in_rate_and_frequency() {
        let mut prev = 0.0;
        for r in [1.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
            let g = rain_db_per_km(73.0, r);
            assert!(g > prev);
            prev = g;
        }
        assert!(rain_db_per_km(86.0, 20.0) > rain_db_per_km(73.0, 20.0));
    }

    #[test]
    fn clamps_out_of_range_frequencies() {
        let lo = rain_coefficients(5.0);
        assert_eq!(lo, rain_coefficients(12.0));
        let hi = rain_coefficients(200.0);
        assert_eq!(hi, rain_coefficients(100.0));
    }
}
