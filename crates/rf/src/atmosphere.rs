//! Gaseous and cloud attenuation with altitude dependence.
//!
//! Shapes follow ITU-R P.676 (attenuation by atmospheric gases) and
//! P.840 (clouds and fog), the models the paper cites in §3.1. We use
//! simplified frequency fits that are accurate in the bands this
//! system uses (E band, 71–86 GHz) rather than the full line-by-line
//! oxygen/water-vapor summation: what the reproduction needs is the
//! correct *structure* — strong altitude decay with water-vapor and
//! cloud scale heights, so that B2B links at 17+ km ride "above
//! significant weather and atmospheric attenuation" (§2.2) while B2G
//! paths accumulate most of their loss in the lowest kilometers.

/// Water-vapor scale height, meters. Specific attenuation from vapor
/// decays as `exp(-h/H)`.
pub const VAPOR_SCALE_HEIGHT_M: f64 = 2_000.0;

/// Effective dry-air (oxygen) attenuation scale height, meters.
/// Continuum absorption scales roughly with pressure squared, so the
/// attenuation scale height is about half the 6 km pressure scale
/// height — the stratosphere is nearly transparent at E band.
pub const OXYGEN_SCALE_HEIGHT_M: f64 = 3_000.0;

/// Cloud liquid water is concentrated in the troposphere below this
/// altitude (tropical convective clouds top out near 12–16 km, but
/// liquid water relevant to E-band loss sits much lower).
pub const CLOUD_TOP_M: f64 = 9_000.0;

/// Sea-level specific gaseous attenuation at `freq_ghz`, dB/km, for a
/// moderately humid (tropical) atmosphere.
///
/// Fit anchored at: ~0.09 dB/km at 12 GHz, ~0.35 dB/km at 73 GHz,
/// ~0.45 dB/km at 86 GHz (away from the 60 GHz oxygen complex, which
/// none of our bands touch).
pub fn sea_level_gaseous_db_per_km(freq_ghz: f64) -> f64 {
    // Oxygen continuum contribution plus the water-vapor continuum
    // rising roughly with f^1.6 toward the 183 GHz line.
    let oxygen = 0.0065 + 0.000_045 * freq_ghz * freq_ghz;
    let vapor = 0.004 * (freq_ghz / 10.0).powf(1.6);
    oxygen + vapor
}

/// Specific gaseous attenuation at altitude `alt_m`, dB/km.
pub fn gaseous_db_per_km(freq_ghz: f64, alt_m: f64) -> f64 {
    let h = alt_m.max(0.0);
    let oxygen = (0.0065 + 0.000_045 * freq_ghz * freq_ghz) * (-h / OXYGEN_SCALE_HEIGHT_M).exp();
    let vapor = 0.004 * (freq_ghz / 10.0).powf(1.6) * (-h / VAPOR_SCALE_HEIGHT_M).exp();
    oxygen + vapor
}

/// Specific cloud attenuation, dB/km, for liquid-water density
/// `lwc_g_m3` (g/m³) at `freq_ghz`, following the P.840 structure
/// `γ = K_l(f) · M` with `K_l` rising ~quadratically below 100 GHz.
///
/// At 73 GHz, `K_l ≈ 2.3 (dB/km)/(g/m³)`; a dense cumulus (0.5 g/m³)
/// costs ≈1.2 dB/km, so a 5 km cloud transit costs ≈6 dB — enough to
/// degrade a marginal B2G link, matching the paper's experience that
/// "rain and clouds primarily affected B2G connections".
pub fn cloud_db_per_km(freq_ghz: f64, lwc_g_m3: f64) -> f64 {
    if lwc_g_m3 <= 0.0 {
        return 0.0;
    }
    let k_l = 0.000_43 * freq_ghz * freq_ghz;
    k_l * lwc_g_m3
}

/// Whether an altitude can hold cloud liquid water at all.
pub fn in_cloud_layer(alt_m: f64) -> bool {
    (0.0..CLOUD_TOP_M).contains(&alt_m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sea_level_e_band_attenuation_in_expected_range() {
        let g = sea_level_gaseous_db_per_km(73.0);
        assert!(g > 0.2 && g < 0.6, "got {g}");
        let g86 = sea_level_gaseous_db_per_km(86.0);
        assert!(g86 > g, "attenuation grows with frequency");
    }

    #[test]
    fn gaseous_attenuation_decays_with_altitude() {
        let sea = gaseous_db_per_km(73.0, 0.0);
        let strat = gaseous_db_per_km(73.0, 18_000.0);
        assert!(
            strat < sea / 20.0,
            "stratosphere is nearly transparent: {strat} vs {sea}"
        );
    }

    #[test]
    fn sea_level_matches_altitude_zero() {
        assert!((sea_level_gaseous_db_per_km(73.0) - gaseous_db_per_km(73.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn cloud_attenuation_scales_linearly_with_water() {
        let a = cloud_db_per_km(73.0, 0.25);
        let b = cloud_db_per_km(73.0, 0.5);
        assert!((b - 2.0 * a).abs() < 1e-12);
        assert_eq!(cloud_db_per_km(73.0, 0.0), 0.0);
        assert_eq!(cloud_db_per_km(73.0, -1.0), 0.0);
    }

    #[test]
    fn dense_cumulus_at_e_band_is_about_1db_per_km() {
        let g = cloud_db_per_km(73.0, 0.5);
        assert!(g > 0.8 && g < 1.6, "got {g}");
    }

    #[test]
    fn cloud_layer_excludes_stratosphere() {
        assert!(in_cloud_layer(1_000.0));
        assert!(in_cloud_layer(8_000.0));
        assert!(!in_cloud_layer(17_000.0));
        assert!(!in_cloud_layer(-5.0));
    }
}
