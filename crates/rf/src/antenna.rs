//! Directional antenna gain patterns.
//!
//! Loon used "high-gain, highly directional antennas ... mounted on
//! mechanically pointable gimbals" (§2.2). The gain pattern matters to
//! the reproduction in two ways: boresight gain closes the long-range
//! link budget, and the *first side lobe* explains the bump "around
//! −14 dB, which we suspect mostly represents locking on to side lobes
//! of the antenna pattern" in Figure 10.
//!
//! The model is a quantized parabolic main lobe with an explicit first
//! side-lobe ring and an ITU-style `32 − 25·log10(θ)` far-out envelope
//! (quantization itself is one of the paper's listed model-fidelity
//! limits: "quantized representations of antenna gain patterns", §5).

/// A rotationally symmetric directional antenna pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntennaPattern {
    /// Boresight gain, dBi.
    pub boresight_gain_dbi: f64,
    /// Half-power (−3 dB) full beamwidth, degrees.
    pub beamwidth_deg: f64,
    /// First side-lobe level relative to boresight, dB (negative).
    pub first_sidelobe_rel_db: f64,
}

impl AntennaPattern {
    /// Loon-class E-band gimballed dish: ~50 dBi boresight, 0.7°
    /// beamwidth, −14 dB first side lobe (Figure 10).
    pub fn e_band_balloon() -> Self {
        AntennaPattern {
            boresight_gain_dbi: 50.0,
            beamwidth_deg: 0.7,
            first_sidelobe_rel_db: -14.0,
        }
    }

    /// Ground-station radome antenna: "provisioned with higher
    /// performance radio systems" (§2.2) — higher gain, tighter beam.
    pub fn e_band_ground_station() -> Self {
        AntennaPattern {
            boresight_gain_dbi: 54.0,
            beamwidth_deg: 0.45,
            first_sidelobe_rel_db: -16.0,
        }
    }

    /// Gain at `offset_deg` away from boresight, dBi.
    ///
    /// Piecewise: parabolic main lobe to the first null, a flat first
    /// side-lobe ring, then the `32 − 25·log10(θ)` reference envelope,
    /// floored at −10 dBi (back-lobe).
    pub fn gain_dbi(&self, offset_deg: f64) -> f64 {
        let theta = offset_deg.abs();
        let half_bw = self.beamwidth_deg / 2.0;
        // Main lobe: G0 − 12(θ/θ3dB)² where θ3dB is the half beamwidth.
        let main = self.boresight_gain_dbi - 12.0 * (theta / half_bw).powi(2);
        // First null around 1.4× beamwidth; side-lobe ring spans to ~2.6×.
        let first_null = 1.4 * self.beamwidth_deg;
        let sidelobe_end = 2.6 * self.beamwidth_deg;
        let sidelobe_gain = self.boresight_gain_dbi + self.first_sidelobe_rel_db;
        let envelope = (32.0 - 25.0 * theta.max(1e-3).log10()).min(sidelobe_gain);
        let g = if theta <= first_null {
            main.max(if theta >= 0.8 * self.beamwidth_deg {
                sidelobe_gain - 20.0
            } else {
                f64::NEG_INFINITY
            })
        } else if theta <= sidelobe_end {
            sidelobe_gain
        } else {
            envelope
        };
        g.max(-10.0)
    }

    /// Pointing loss relative to boresight at `offset_deg`, dB (≥ 0).
    pub fn pointing_loss_db(&self, offset_deg: f64) -> f64 {
        self.boresight_gain_dbi - self.gain_dbi(offset_deg)
    }

    /// Offset (degrees) of the center of the first side-lobe ring —
    /// where a mis-locked tracker settles.
    pub fn first_sidelobe_offset_deg(&self) -> f64 {
        2.0 * self.beamwidth_deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_gain_at_zero_offset() {
        let p = AntennaPattern::e_band_balloon();
        assert_eq!(p.gain_dbi(0.0), 50.0);
        assert_eq!(p.pointing_loss_db(0.0), 0.0);
    }

    #[test]
    fn half_power_at_half_beamwidth() {
        let p = AntennaPattern::e_band_balloon();
        let g = p.gain_dbi(p.beamwidth_deg / 2.0);
        assert!(
            (g - (50.0 - 12.0)).abs() < 1e-9,
            "parabolic model: G0-12 at θ3dB, got {g}"
        );
        // −3 dB point is at half of the half-beamwidth × sqrt(1/4)... the
        // conventional −3 dB point in this model sits at θ3dB/2:
        let g3 = p.gain_dbi(p.beamwidth_deg / 4.0);
        assert!((g3 - 47.0).abs() < 0.01, "got {g3}");
    }

    #[test]
    fn first_sidelobe_is_14db_down() {
        let p = AntennaPattern::e_band_balloon();
        let g = p.gain_dbi(p.first_sidelobe_offset_deg());
        assert!((g - 36.0).abs() < 1e-9, "50 − 14 = 36 dBi, got {g}");
    }

    #[test]
    fn gain_monotone_envelope_far_out() {
        let p = AntennaPattern::e_band_balloon();
        let g10 = p.gain_dbi(10.0);
        let g40 = p.gain_dbi(40.0);
        let g170 = p.gain_dbi(170.0);
        assert!(g10 > g40 && g40 >= g170);
        assert!(g170 >= -10.0, "back-lobe floor");
    }

    #[test]
    fn pattern_symmetric_in_offset_sign() {
        let p = AntennaPattern::e_band_ground_station();
        for off in [0.1, 0.5, 2.0, 30.0] {
            assert_eq!(p.gain_dbi(off), p.gain_dbi(-off));
        }
    }

    #[test]
    fn ground_station_outperforms_balloon_antenna() {
        let b = AntennaPattern::e_band_balloon();
        let g = AntennaPattern::e_band_ground_station();
        assert!(g.boresight_gain_dbi > b.boresight_gain_dbi);
        assert!(g.beamwidth_deg < b.beamwidth_deg);
    }
}
