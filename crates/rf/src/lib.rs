//! RF propagation and link-budget substrate.
//!
//! The TS-SDN "modeled the 3-D geometry and RF propagation of the
//! physical world" (§2.3). For each candidate transceiver pair the
//! Link Evaluator computed "the attenuation along the transmission
//! vector ... based on an evaluation of free space loss, atmospheric
//! absorption, and moisture attenuation according to ITU-R models"
//! and from antenna gain patterns derived "the maximum bitrate with
//! acceptable link margin ... or the expected link margin for minimal
//! bitrate" (§3.1).
//!
//! This crate provides that whole pipeline:
//!
//! * [`fspl`] — free-space path loss.
//! * [`atmosphere`] — gaseous (ITU-R P.676-shaped) and cloud/fog
//!   (P.840-shaped) specific attenuation with altitude scale heights,
//!   integrated along slant paths.
//! * [`rain`] — rain specific attenuation (P.838-shaped power law).
//! * [`antenna`] — parabolic-antenna gain patterns with an explicit
//!   first side lobe (the −14 dB bump in Figure 10 comes from radios
//!   locking onto side lobes).
//! * [`weather`] — 4-D weather truth/forecast/gauge models: moving
//!   rain cells, a gridded interpolated field (the paper's cached
//!   "volumes of the atmosphere ... assembled using 4-D linear
//!   interpolation"), forecast views with injected error, and the
//!   ITU-style regional-seasonal fallback.
//! * [`link_budget`] — end-to-end candidate-link evaluation producing
//!   the link-margin / bitrate reports the Solver consumes, including
//!   the "marginal" annotation for links just below acceptable margin.
//!
//! All power quantities are dB / dBm; frequencies are GHz; rain rates
//! are mm/h; distances meters unless suffixed otherwise.

pub mod antenna;
pub mod atmosphere;
pub mod fspl;
pub mod link_budget;
pub mod rain;
pub mod weather;

pub use antenna::AntennaPattern;
pub use fspl::free_space_path_loss_db;
pub use link_budget::{
    capacity_mbps, evaluate_link, path_attenuation_db, AttenuationBreakdown, LinkBudgetReport,
    LinkQuality, RadioParams, BITRATE_TABLE, MCS_CAPACITY_TABLE,
};
pub use weather::{
    ClearSky, ForecastView, ItuSeasonal, RainCell, RainGauge, SyntheticWeather, WeatherField,
    WeatherGrid, WeatherSample,
};

/// Convert a linear power ratio to decibels.
#[inline]
pub fn to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Convert decibels to a linear power ratio.
#[inline]
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Thermal noise floor for a receiver: `kTB` plus noise figure, dBm.
#[inline]
pub fn noise_floor_dbm(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    -174.0 + 10.0 * bandwidth_hz.log10() + noise_figure_db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for r in [0.001, 0.5, 1.0, 10.0, 12345.0] {
            assert!((from_db(to_db(r)) - r).abs() / r < 1e-12);
        }
    }

    #[test]
    fn noise_floor_for_e_band_receiver() {
        // 1 GHz bandwidth, 6 dB NF → −78 dBm.
        let n = noise_floor_dbm(1e9, 6.0);
        assert!((n - (-78.0)).abs() < 1e-9, "got {n}");
    }
}
