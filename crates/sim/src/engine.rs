//! A minimal, deterministic discrete-event queue.
//!
//! Components schedule typed events at future instants; the driver
//! pops them in time order. Ties are broken by insertion sequence so
//! the execution order is fully deterministic — a prerequisite for
//! the reproducibility §6 of the paper asks for.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a future instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number (insertion order within same instant).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue starting at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped
    /// event (or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past
    /// clamps to `now` (the event fires immediately on the next pop) —
    /// this mirrors command delivery racing a late clock, and panicking
    /// here would make control-channel jitter fatal.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        Some(ev)
    }

    /// Pop the next event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), "c");
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.pop();
        q.schedule(SimTime::from_secs(1), "too-early");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(10), "clamped to now");
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        assert_eq!(q.pop_until(SimTime::from_secs(15)).unwrap().event, "a");
        assert!(q.pop_until(SimTime::from_secs(15)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_until(SimTime::from_secs(20) + SimDuration::ZERO)
                .unwrap()
                .event,
            "b"
        );
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }
}
