//! Solar/battery power model and the daily service window.
//!
//! "System engineering trade offs ... resulted in insufficient energy
//! storage to power the LTE and backhaul networks through the night.
//! Instead, Loon served from shortly after dawn through the first few
//! hours of darkness each day (approximately 14 hours). As a result,
//! the Loon network had to bootstrap itself every day" (§2.2).
//!
//! The model integrates solar charge (sinusoidal daylight profile)
//! against payload draw, holding a safety reserve for avionics and
//! satcom: "balloons kept a reserve of power for safety critical
//! systems". The communications payload powers on once the battery
//! clears a bootstrap threshold after dawn and powers off when the
//! battery hits the reserve floor — producing the ~14-hour service
//! window and the nightly mesh teardown that shape Figure 6.

use crate::time::{SimDuration, SimTime};

/// Static power-system parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerConfig {
    /// Battery capacity, watt-hours.
    pub battery_wh: f64,
    /// Peak solar generation at local noon, watts.
    pub solar_peak_w: f64,
    /// Communications payload draw (LTE + backhaul radios), watts.
    pub payload_draw_w: f64,
    /// Always-on avionics/satcom draw, watts.
    pub avionics_draw_w: f64,
    /// Fraction of capacity reserved for safety-critical systems;
    /// the payload switches off at this floor.
    pub reserve_fraction: f64,
    /// Fraction of capacity required before the payload boots after
    /// dawn.
    pub bootstrap_fraction: f64,
    /// Local hour of dawn (sunrise), `[0, 24)`.
    pub dawn_hour: f64,
    /// Local hour of dusk (sunset).
    pub dusk_hour: f64,
}

impl PowerConfig {
    /// Loon-final-generation-like defaults calibrated to yield a
    /// ~14-hour payload window starting shortly after dawn.
    pub fn loon_default() -> Self {
        PowerConfig {
            battery_wh: 3_000.0,
            solar_peak_w: 1_500.0,
            payload_draw_w: 450.0,
            avionics_draw_w: 60.0,
            reserve_fraction: 0.25,
            bootstrap_fraction: 0.30,
            dawn_hour: 6.0,
            dusk_hour: 18.0,
        }
    }

    /// Solar generation at local time-of-day `hour`, watts.
    pub fn solar_w(&self, hour: f64) -> f64 {
        if hour <= self.dawn_hour || hour >= self.dusk_hour {
            return 0.0;
        }
        let span = self.dusk_hour - self.dawn_hour;
        let x = (hour - self.dawn_hour) / span; // 0..1 across daylight
        self.solar_peak_w * (std::f64::consts::PI * x).sin()
    }
}

/// Whether the communications payload is powered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Payload on: radios and LTE can operate.
    ServiceOn,
    /// Payload off: only avionics/satcom run (night or low battery).
    ServiceOff,
}

/// The integrating power system of one balloon.
#[derive(Debug, Clone)]
pub struct PowerSystem {
    config: PowerConfig,
    /// Stored energy, watt-hours.
    charge_wh: f64,
    state: PowerState,
    last_update: SimTime,
}

impl PowerSystem {
    /// A power system starting at midnight with the given state of
    /// charge (fraction of capacity).
    pub fn new(config: PowerConfig, initial_soc: f64) -> Self {
        PowerSystem {
            charge_wh: config.battery_wh * initial_soc.clamp(0.0, 1.0),
            config,
            state: PowerState::ServiceOff,
            last_update: SimTime::ZERO,
        }
    }

    /// Current payload state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// State of charge, fraction of capacity.
    pub fn soc(&self) -> f64 {
        self.charge_wh / self.config.battery_wh
    }

    /// True when the payload (and hence the backhaul radios) can run.
    pub fn service_available(&self) -> bool {
        self.state == PowerState::ServiceOn
    }

    /// Integrate generation/draw up to `now` and update the payload
    /// state machine. Call with monotonically non-decreasing times.
    pub fn advance_to(&mut self, now: SimTime) {
        const MAX_STEP: SimDuration = SimDuration(5 * 60_000); // 5 min
        while self.last_update < now {
            let next = (self.last_update + MAX_STEP).min(now);
            let dt_h = (next - self.last_update).as_secs_f64() / 3600.0;
            let hour = self.last_update.hour_of_day();
            let gen_w = self.config.solar_w(hour);
            let draw_w = self.config.avionics_draw_w
                + if self.state == PowerState::ServiceOn {
                    self.config.payload_draw_w
                } else {
                    0.0
                };
            self.charge_wh =
                (self.charge_wh + (gen_w - draw_w) * dt_h).clamp(0.0, self.config.battery_wh);

            let reserve = self.config.reserve_fraction * self.config.battery_wh;
            let bootstrap = self.config.bootstrap_fraction * self.config.battery_wh;
            let daylight = gen_w > 0.0;
            self.state = match self.state {
                PowerState::ServiceOff => {
                    // Boot after dawn once above the bootstrap threshold.
                    if daylight && self.charge_wh >= bootstrap {
                        PowerState::ServiceOn
                    } else {
                        PowerState::ServiceOff
                    }
                }
                PowerState::ServiceOn => {
                    if self.charge_wh <= reserve {
                        PowerState::ServiceOff
                    } else {
                        PowerState::ServiceOn
                    }
                }
            };
            self.last_update = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run two days and collect (hour, state) transitions.
    fn simulate_transitions() -> Vec<(f64, PowerState)> {
        let mut p = PowerSystem::new(PowerConfig::loon_default(), 0.6);
        let mut out = Vec::new();
        let mut last = p.state();
        for step in 0..(2 * 24 * 12) {
            let t = SimTime::from_mins(step * 5);
            p.advance_to(t);
            if p.state() != last {
                last = p.state();
                out.push((t.as_ms() as f64 / 3_600_000.0 % 24.0, last));
            }
        }
        out
    }

    #[test]
    fn solar_profile_zero_at_night_peak_at_noon() {
        let c = PowerConfig::loon_default();
        assert_eq!(c.solar_w(0.0), 0.0);
        assert_eq!(c.solar_w(23.0), 0.0);
        assert!((c.solar_w(12.0) - c.solar_peak_w).abs() < 1.0);
        assert!(c.solar_w(8.0) > 0.0 && c.solar_w(8.0) < c.solar_peak_w);
    }

    #[test]
    fn service_window_is_about_14_hours() {
        let transitions = simulate_transitions();
        // Find an on→off pair on the second day.
        let ons: Vec<f64> = transitions
            .iter()
            .filter(|t| t.1 == PowerState::ServiceOn)
            .map(|t| t.0)
            .collect();
        let offs: Vec<f64> = transitions
            .iter()
            .filter(|t| t.1 == PowerState::ServiceOff)
            .map(|t| t.0)
            .collect();
        assert!(
            !ons.is_empty() && !offs.is_empty(),
            "payload cycles: {transitions:?}"
        );
        let on = ons[ons.len() - 1];
        let off = offs[offs.len() - 1];
        let window = if off > on { off - on } else { off + 24.0 - on };
        assert!(
            (12.0..=16.5).contains(&window),
            "service window ≈14 h, got {window:.1} h (on {on:.1}, off {off:.1})"
        );
    }

    #[test]
    fn service_starts_shortly_after_dawn() {
        let transitions = simulate_transitions();
        let on = transitions
            .iter()
            .find(|t| t.1 == PowerState::ServiceOn)
            .expect("boots");
        assert!(
            on.0 >= 6.0 && on.0 <= 9.0,
            "boot shortly after 06:00 dawn, got {:.2}",
            on.0
        );
    }

    #[test]
    fn service_extends_into_darkness() {
        let transitions = simulate_transitions();
        let off = transitions
            .iter()
            .rev()
            .find(|t| t.1 == PowerState::ServiceOff)
            .expect("shuts down");
        // "through the first few hours of darkness": off after 18:00 dusk.
        assert!(
            off.0 > 18.0 || off.0 < 3.0,
            "shutdown in darkness, got {:.2}",
            off.0
        );
    }

    #[test]
    fn battery_never_fully_drains() {
        let mut p = PowerSystem::new(PowerConfig::loon_default(), 0.6);
        for h in 0..(5 * 24) {
            p.advance_to(SimTime::from_hours(h));
            assert!(p.soc() > 0.05, "reserve held at hour {h}: soc {}", p.soc());
        }
    }

    #[test]
    fn daily_cycle_repeats() {
        let mut p = PowerSystem::new(PowerConfig::loon_default(), 0.6);
        let mut states = Vec::new();
        for d in 2..5u64 {
            p.advance_to(SimTime::from_days(d) + SimDuration::from_hours(12));
            states.push(p.state());
        }
        assert!(
            states.iter().all(|s| *s == PowerState::ServiceOn),
            "on at noon every day"
        );
        let mut p2 = PowerSystem::new(PowerConfig::loon_default(), 0.6);
        for d in 2..5u64 {
            p2.advance_to(SimTime::from_days(d) + SimDuration::from_hours(3));
            assert_eq!(
                p2.state(),
                PowerState::ServiceOff,
                "off at 03:00 every night"
            );
        }
    }
}
