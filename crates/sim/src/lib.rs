//! Deterministic simulation substrate: event queue, simulated clock,
//! seeded randomness, stratospheric winds, balloon flight dynamics,
//! the Fleet Management Software (FMS) station-seeking controller, and
//! the day/night power model.
//!
//! The paper's explainability section (§6) recommends designing
//! "solvers and their inputs in a way that enables the reproducibility
//! of network commands in tests and post-hoc analysis". This crate
//! takes that to heart: the whole reproduction is a single-threaded
//! discrete-event simulation where every source of randomness is a
//! named [`rng::RngStreams`] stream fanned out from one master seed —
//! identical seeds produce bit-identical runs.
//!
//! Physical modelling notes (per the DESIGN.md substitution table):
//!
//! * **Winds** ([`wind`]) — balloons "floated freely in the
//!   stratosphere, but had the ability to change altitude" to catch
//!   wind currents (§2.2). We model a handful of altitude layers, each
//!   with an Ornstein–Uhlenbeck-evolving wind vector, plus mild
//!   spatial variation. Navigation is therefore *probabilistic*, as
//!   the paper stresses, and balloon trajectories are unpredictable to
//!   a meaningful degree.
//! * **FMS** ([`balloon`]) — picks the altitude layer whose wind best
//!   points toward the station-keeping target, issuing up to hundreds
//!   of altitude changes per day, tolerating minutes of command
//!   latency (§2.2 "Command & Control").
//! * **Power** ([`power`]) — solar generation and battery storage
//!   sized so the communications payload serves "from shortly after
//!   dawn through the first few hours of darkness each day
//!   (approximately 14 hours)" and the network "had to bootstrap
//!   itself every day" (§2.2).

pub mod balloon;
pub mod engine;
pub mod fleet;
pub mod power;
pub mod rng;
pub mod time;
pub mod wind;

pub use balloon::{Balloon, BalloonConfig, FmsController};
pub use engine::{EventQueue, ScheduledEvent};
pub use fleet::{Fleet, FleetConfig, GroundStationSite, PlatformId, PlatformKind};
pub use power::{PowerConfig, PowerState, PowerSystem};
pub use rng::RngStreams;
pub use time::{SimDuration, SimTime};
pub use wind::{WindField, WindLayer, WindSample};
