//! The simulated fleet: balloons, ground stations, winds and power,
//! advanced together on a fixed tick.
//!
//! "Loon operated three ground station sites and dozens of balloons
//! that were continuously seeking the serving region" (§2.2). The
//! fleet is the physical *truth* the TS-SDN observes (with error and
//! delay) and plans against.

use crate::balloon::{Balloon, BalloonConfig};
use crate::power::{PowerConfig, PowerSystem};
use crate::rng::RngStreams;
use crate::time::{SimDuration, SimTime};
use crate::wind::WindField;
use rand::Rng;
use tssdn_geo::GeoPoint;

/// Identifier for any platform in the fleet. Ground stations and
/// balloons share the id space; kind is carried alongside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlatformId(pub u32);

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What kind of platform an id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// A stratospheric balloon (3 transceivers, wind-driven, solar
    /// powered).
    Balloon,
    /// A ground station (2 transceivers, fixed, always powered).
    GroundStation,
}

/// A fixed ground-station site.
#[derive(Debug, Clone)]
pub struct GroundStationSite {
    /// Platform id of the site.
    pub id: PlatformId,
    /// Site location (antenna height above terrain folded into alt).
    pub pos: GeoPoint,
}

/// Configuration for fleet generation.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of balloons to spawn.
    pub num_balloons: usize,
    /// Service-region center; balloons station-seek toward it.
    pub region_center: GeoPoint,
    /// Balloons spawn uniformly within this radius of the center, m.
    pub spawn_radius_m: f64,
    /// Ground-station site positions. Loon ran 3 sites (§2.2).
    pub ground_sites: Vec<GeoPoint>,
    /// Flight parameters shared by all balloons.
    pub balloon: BalloonConfig,
    /// Power parameters shared by all balloons.
    pub power: PowerConfig,
    /// Simulation tick for fleet physics.
    pub tick: SimDuration,
}

impl FleetConfig {
    /// A Kenya-like deployment: `n` balloons around (0°, 37.5°E), three
    /// ground stations spread ~100–200 km apart.
    pub fn kenya(n: usize) -> Self {
        let center = GeoPoint::new(0.0, 37.5, 18_000.0);
        FleetConfig {
            num_balloons: n,
            region_center: center,
            spawn_radius_m: 400_000.0,
            ground_sites: vec![
                GeoPoint::new(-1.25, 36.85, 1_700.0), // Nairobi-like
                GeoPoint::new(0.05, 37.65, 1_600.0),  // Mt. Kenya foothills
                GeoPoint::new(-0.45, 39.65, 100.0),   // coastal plain
            ],
            balloon: BalloonConfig::loon_default(center),
            power: PowerConfig::loon_default(),
            tick: SimDuration::from_secs(60),
        }
    }
}

/// The live fleet state.
pub struct Fleet {
    /// Balloons, indexed by `PlatformId(i)` for `i < num_balloons`.
    pub balloons: Vec<Balloon>,
    /// Per-balloon power systems (same indexing).
    pub power: Vec<PowerSystem>,
    /// Ground stations (ids continue after balloons).
    pub ground_stations: Vec<GroundStationSite>,
    /// The wind field truth.
    pub wind: WindField,
    config: FleetConfig,
    now: SimTime,
}

impl Fleet {
    /// Generate a fleet from `config`, deterministically from
    /// `streams`.
    pub fn generate(config: FleetConfig, streams: &RngStreams) -> Self {
        let mut rng = streams.stream("fleet-spawn");
        let wind = WindField::loon_stratosphere(streams);
        let mut balloons = Vec::with_capacity(config.num_balloons);
        let mut power = Vec::with_capacity(config.num_balloons);
        for i in 0..config.num_balloons {
            // Uniform in a disc around the region center.
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = config.spawn_radius_m * rng.gen_range(0.0f64..1.0).sqrt();
            let alt = rng.gen_range(15_200.0..19_800.0);
            let pos = config.region_center.offset(
                r * theta.sin(),
                r * theta.cos(),
                alt - config.region_center.alt_m,
            );
            balloons.push(Balloon::new(pos, config.balloon));
            // Stagger initial charge so the fleet doesn't boot in
            // lockstep.
            let soc = rng.gen_range(0.4..0.8);
            let _ = i;
            power.push(PowerSystem::new(config.power, soc));
        }
        let ground_stations = config
            .ground_sites
            .iter()
            .enumerate()
            .map(|(i, pos)| GroundStationSite {
                id: PlatformId((config.num_balloons + i) as u32),
                pos: *pos,
            })
            .collect();
        Fleet {
            balloons,
            power,
            ground_stations,
            wind,
            config,
            now: SimTime::ZERO,
        }
    }

    /// Current fleet time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The generation config.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Total number of platforms (balloons + ground stations).
    pub fn num_platforms(&self) -> usize {
        self.balloons.len() + self.ground_stations.len()
    }

    /// Iterate all platform ids with their kinds.
    pub fn platform_ids(&self) -> impl Iterator<Item = (PlatformId, PlatformKind)> + '_ {
        let nb = self.balloons.len() as u32;
        (0..nb)
            .map(|i| (PlatformId(i), PlatformKind::Balloon))
            .chain(
                self.ground_stations
                    .iter()
                    .map(|g| (g.id, PlatformKind::GroundStation)),
            )
    }

    /// Kind of a platform id.
    pub fn kind(&self, id: PlatformId) -> PlatformKind {
        if (id.0 as usize) < self.balloons.len() {
            PlatformKind::Balloon
        } else {
            PlatformKind::GroundStation
        }
    }

    /// Position of any platform at the current fleet time.
    pub fn position(&self, id: PlatformId) -> GeoPoint {
        let idx = id.0 as usize;
        if idx < self.balloons.len() {
            self.balloons[idx].pos
        } else {
            self.ground_stations[idx - self.balloons.len()].pos
        }
    }

    /// Whether a platform's communications payload is powered.
    /// Ground stations have "reliable power" (§2.2) and are always on.
    pub fn payload_powered(&self, id: PlatformId) -> bool {
        let idx = id.0 as usize;
        if idx < self.balloons.len() {
            self.power[idx].service_available()
        } else {
            true
        }
    }

    /// Advance the whole fleet (winds, flight, power) to `to`, in
    /// config-tick steps.
    pub fn advance_to(&mut self, to: SimTime) {
        while self.now < to {
            let next = (self.now + self.config.tick).min(to);
            let dt = next - self.now;
            self.wind.advance_to(next);
            for b in &mut self.balloons {
                b.step(next, dt, &self.wind);
            }
            for p in &mut self.power {
                p.advance_to(next);
            }
            self.now = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(seed: u64) -> Fleet {
        Fleet::generate(FleetConfig::kenya(8), &RngStreams::new(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_fleet(3);
        let b = small_fleet(3);
        for (x, y) in a.balloons.iter().zip(&b.balloons) {
            assert_eq!(x.pos, y.pos);
        }
    }

    #[test]
    fn ids_partition_balloons_and_ground_stations() {
        let f = small_fleet(3);
        assert_eq!(f.num_platforms(), 11);
        assert_eq!(f.kind(PlatformId(0)), PlatformKind::Balloon);
        assert_eq!(f.kind(PlatformId(7)), PlatformKind::Balloon);
        assert_eq!(f.kind(PlatformId(8)), PlatformKind::GroundStation);
        assert_eq!(f.kind(PlatformId(10)), PlatformKind::GroundStation);
        let kinds: Vec<_> = f.platform_ids().collect();
        assert_eq!(kinds.len(), 11);
    }

    #[test]
    fn balloons_spawn_within_radius() {
        let f = small_fleet(5);
        for b in &f.balloons {
            let d = b
                .pos
                .ground_distance_m(&GeoPoint::new(0.0, 37.5, b.pos.alt_m));
            assert!(d <= 401_000.0, "spawned at {d} m");
        }
    }

    #[test]
    fn ground_stations_always_powered_balloons_cycle() {
        let mut f = small_fleet(9);
        // At 03:00 all balloons are dark; ground stations stay up.
        f.advance_to(SimTime::from_hours(3));
        assert!(f.payload_powered(PlatformId(8)));
        let dark = (0..8)
            .filter(|i| !f.payload_powered(PlatformId(*i)))
            .count();
        assert_eq!(dark, 8, "all balloons dark at 03:00");
        // At noon the fleet is serving.
        f.advance_to(SimTime::from_hours(12));
        let lit = (0..8).filter(|i| f.payload_powered(PlatformId(*i))).count();
        assert_eq!(lit, 8, "all balloons powered at noon");
    }

    #[test]
    fn fleet_positions_evolve() {
        let mut f = small_fleet(11);
        let before: Vec<_> = f.balloons.iter().map(|b| b.pos).collect();
        f.advance_to(SimTime::from_hours(6));
        let moved = f
            .balloons
            .iter()
            .zip(&before)
            .filter(|(b, p)| b.pos.ground_distance_m(p) > 1_000.0)
            .count();
        assert_eq!(moved, 8, "every balloon drifted");
        // Ground stations don't move.
        assert_eq!(f.position(PlatformId(8)), f.ground_stations[0].pos);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut f = small_fleet(2);
        f.advance_to(SimTime::from_hours(1));
        let p = f.position(PlatformId(0));
        f.advance_to(SimTime::from_hours(1));
        assert_eq!(p, f.position(PlatformId(0)));
    }
}
