//! Simulated time: millisecond-resolution instants and durations.
//!
//! All timestamps in the reproduction are [`SimTime`] — never wall
//! clock. The newtype keeps instants and durations from being mixed
//! up and provides the day/time-of-day arithmetic the power model and
//! availability metrics need.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds per simulated day.
pub const MS_PER_DAY: u64 = 24 * 60 * 60 * 1000;

/// An instant in simulated time, milliseconds since simulation start.
/// Simulation start is defined as local midnight of day 0 in the
/// service region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// Construct from whole days.
    pub fn from_days(d: u64) -> Self {
        SimTime(d * MS_PER_DAY)
    }

    /// Raw milliseconds since simulation start.
    pub fn as_ms(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, fractional.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Which simulated day this instant falls in (day 0 first).
    pub fn day(&self) -> u64 {
        self.0 / MS_PER_DAY
    }

    /// Milliseconds since local midnight.
    pub fn ms_of_day(&self) -> u64 {
        self.0 % MS_PER_DAY
    }

    /// Hours since local midnight, fractional, in `[0, 24)`.
    pub fn hour_of_day(&self) -> f64 {
        self.ms_of_day() as f64 / 3_600_000.0
    }

    /// Duration since an earlier instant (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Raw milliseconds.
    pub fn as_ms(&self) -> u64 {
        self.0
    }

    /// Seconds, fractional.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Scale by a factor (saturating, non-negative factors only make
    /// sense; negative factors clamp to zero).
    pub fn mul_f64(&self, f: f64) -> SimDuration {
        SimDuration((self.0 as f64 * f.max(0.0)) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let ms = self.ms_of_day();
        let h = ms / 3_600_000;
        let m = (ms / 60_000) % 60;
        let s = (ms / 1000) % 60;
        write!(f, "d{d} {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 / 1000;
        if s >= 3600 {
            write!(f, "{}h{:02}m{:02}s", s / 3600, (s / 60) % 60, s % 60)
        } else if s >= 60 {
            write!(f, "{}m{:02}s", s / 60, s % 60)
        } else {
            write!(f, "{}.{:03}s", s, self.0 % 1000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_and_hour_of_day() {
        let t = SimTime::from_days(2) + SimDuration::from_hours(7) + SimDuration::from_mins(30);
        assert_eq!(t.day(), 2);
        assert!((t.hour_of_day() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_saturates_going_backwards() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(30);
        assert_eq!(b - a, SimDuration::from_secs(20));
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(1) + SimDuration::from_hours(13) + SimDuration::from_secs(5);
        assert_eq!(format!("{t}"), "d1 13:00:05");
        assert_eq!(format!("{}", SimDuration::from_mins(90)), "1h30m00s");
        assert_eq!(format!("{}", SimDuration::from_secs(75)), "1m15s");
        assert_eq!(format!("{}", SimDuration(1500)), "1.500s");
    }

    #[test]
    fn mul_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs(10).mul_f64(-2.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(2.5),
            SimDuration::from_secs(25)
        );
    }
}
