//! Balloon flight dynamics and the FMS station-seeking controller.
//!
//! Balloons have no lateral thrust: they drift with the wind of the
//! altitude layer they occupy and can only change altitude (at a slow
//! vertical rate). The FMS "modeled winds at different altitudes, then
//! automatically instructed balloons to change altitude to catch the
//! desired wind currents and drift toward a target over the service
//! region" (§2.2). Navigation is therefore probabilistic: the best the
//! controller can do is pick the least-bad layer.

use crate::time::{SimDuration, SimTime};
use crate::wind::WindField;
use tssdn_geo::GeoPoint;

/// Static balloon flight parameters.
#[derive(Debug, Clone, Copy)]
pub struct BalloonConfig {
    /// Maximum vertical rate when commanded to change altitude, m/s.
    pub vertical_rate_mps: f64,
    /// Station-keeping target (center of the service region).
    pub target: GeoPoint,
    /// Distance from target below which the balloon loiters (picks
    /// the slowest wind instead of steering), meters.
    pub loiter_radius_m: f64,
    /// How often the FMS re-evaluates the wind column.
    pub decision_interval: SimDuration,
}

impl BalloonConfig {
    /// Loon-like defaults over a Kenya-sized service region.
    pub fn loon_default(target: GeoPoint) -> Self {
        BalloonConfig {
            vertical_rate_mps: 1.0,
            target,
            loiter_radius_m: 120_000.0,
            decision_interval: SimDuration::from_mins(10),
        }
    }
}

/// The FMS decision logic for a single balloon.
///
/// Modeled as a pure function of the local wind column: outside the
/// loiter radius, pick the layer whose wind vector has the greatest
/// component toward the target; inside it, pick the slowest layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct FmsController;

impl FmsController {
    /// Choose a target altitude (meters) for a balloon at `pos`.
    pub fn choose_altitude(
        &self,
        pos: &GeoPoint,
        target: &GeoPoint,
        loiter_radius_m: f64,
        wind: &WindField,
    ) -> f64 {
        let column = wind.column_at(pos);
        let dist = pos.ground_distance_m(&GeoPoint::new(target.lat_deg, target.lon_deg, pos.alt_m));
        if dist <= loiter_radius_m {
            // Loiter: slowest wind keeps us near the target longest.
            column
                .iter()
                .min_by(|a, b| {
                    a.1.speed_mps()
                        .partial_cmp(&b.1.speed_mps())
                        .expect("finite speeds")
                })
                .map(|(alt, _)| *alt)
                .expect("non-empty column")
        } else {
            // Steer: maximize wind component toward the target.
            let bearing = tssdn_geo::deg_to_rad(pos.bearing_deg(target));
            let (to_e, to_n) = (bearing.sin(), bearing.cos());
            column
                .iter()
                .max_by(|a, b| {
                    let pa = a.1.east_mps * to_e + a.1.north_mps * to_n;
                    let pb = b.1.east_mps * to_e + b.1.north_mps * to_n;
                    pa.partial_cmp(&pb).expect("finite projections")
                })
                .map(|(alt, _)| *alt)
                .expect("non-empty column")
        }
    }
}

/// A simulated balloon: drifts with the wind, seeks altitude commands
/// from the FMS.
#[derive(Debug, Clone)]
pub struct Balloon {
    /// Current position.
    pub pos: GeoPoint,
    /// Altitude the FMS is steering toward, meters.
    pub target_alt_m: f64,
    /// Last horizontal velocity (for trajectory reporting), m/s.
    pub vel_east_mps: f64,
    /// Last horizontal velocity (for trajectory reporting), m/s.
    pub vel_north_mps: f64,
    config: BalloonConfig,
    fms: FmsController,
    next_decision: SimTime,
    /// Count of altitude-change commands issued (diagnostic; the
    /// paper notes "hundreds of altitude changes per day").
    pub altitude_commands: u64,
}

impl Balloon {
    /// Spawn a balloon at `pos`.
    pub fn new(pos: GeoPoint, config: BalloonConfig) -> Self {
        Balloon {
            target_alt_m: pos.alt_m,
            pos,
            vel_east_mps: 0.0,
            vel_north_mps: 0.0,
            config,
            fms: FmsController,
            next_decision: SimTime::ZERO,
            altitude_commands: 0,
        }
    }

    /// Ground distance to the station-keeping target, meters.
    pub fn distance_to_target_m(&self) -> f64 {
        self.pos.ground_distance_m(&GeoPoint::new(
            self.config.target.lat_deg,
            self.config.target.lon_deg,
            self.pos.alt_m,
        ))
    }

    /// Advance flight by `dt` ending at absolute time `now`.
    /// The wind field must already be advanced to `now`.
    pub fn step(&mut self, now: SimTime, dt: SimDuration, wind: &WindField) {
        // FMS decision cadence.
        if now >= self.next_decision {
            let chosen = self.fms.choose_altitude(
                &self.pos,
                &self.config.target,
                self.config.loiter_radius_m,
                wind,
            );
            if (chosen - self.target_alt_m).abs() > 1.0 {
                self.target_alt_m = chosen;
                self.altitude_commands += 1;
            }
            self.next_decision = now + self.config.decision_interval;
        }

        let dt_s = dt.as_secs_f64();
        // Vertical motion toward target altitude, rate-limited.
        let dz = (self.target_alt_m - self.pos.alt_m).clamp(
            -self.config.vertical_rate_mps * dt_s,
            self.config.vertical_rate_mps * dt_s,
        );
        // Horizontal drift with the local wind.
        let w = wind.sample(&self.pos);
        self.vel_east_mps = w.east_mps;
        self.vel_north_mps = w.north_mps;
        self.pos = self.pos.offset(w.east_mps * dt_s, w.north_mps * dt_s, dz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStreams;

    fn kenya_target() -> GeoPoint {
        GeoPoint::new(0.0, 37.5, 18_000.0)
    }

    fn run_balloon(start: GeoPoint, days: u64, seed: u64) -> Balloon {
        let streams = RngStreams::new(seed);
        let mut wind = WindField::loon_stratosphere(&streams);
        let mut b = Balloon::new(start, BalloonConfig::loon_default(kenya_target()));
        let dt = SimDuration::from_secs(60);
        let steps = days * 24 * 60;
        let mut now = SimTime::ZERO;
        for _ in 0..steps {
            now += dt;
            wind.advance_to(now);
            b.step(now, dt, &wind);
        }
        b
    }

    #[test]
    fn balloon_drifts_with_wind() {
        let start = GeoPoint::new(0.0, 37.5, 17_500.0);
        let b = run_balloon(start, 1, 42);
        let moved = start.ground_distance_m(&b.pos);
        // At 4–18 m/s a balloon covers hundreds of km/day.
        assert!(moved > 20_000.0, "moved {moved} m in a day");
    }

    #[test]
    fn fms_issues_altitude_commands() {
        let start = GeoPoint::new(2.5, 40.0, 17_500.0); // well off target
        let b = run_balloon(start, 2, 42);
        assert!(b.altitude_commands >= 2, "got {}", b.altitude_commands);
    }

    #[test]
    fn altitude_stays_in_flight_envelope() {
        let start = GeoPoint::new(0.0, 37.5, 17_500.0);
        let streams = RngStreams::new(7);
        let mut wind = WindField::loon_stratosphere(&streams);
        let mut b = Balloon::new(start, BalloonConfig::loon_default(kenya_target()));
        let dt = SimDuration::from_secs(60);
        let mut now = SimTime::ZERO;
        for _ in 0..(3 * 24 * 60) {
            now += dt;
            wind.advance_to(now);
            b.step(now, dt, &wind);
            assert!(
                (14_500.0..=20_500.0).contains(&b.pos.alt_m),
                "altitude {} within stratospheric envelope",
                b.pos.alt_m
            );
        }
    }

    #[test]
    fn station_seeking_beats_ballistic_drift_on_average() {
        // Across several seeds, FMS-steered balloons should stay closer
        // to target than balloons pinned to a fixed layer.
        let start = GeoPoint::new(0.5, 38.0, 17_500.0);
        let mut steered_sum = 0.0;
        let mut pinned_sum = 0.0;
        for seed in 0..6u64 {
            let steered = run_balloon(start, 3, seed);
            steered_sum += steered.distance_to_target_m();

            // Pinned: never change altitude (disable FMS by huge loiter
            // radius so it always "loiters" — but loiter picks slowest
            // layer; instead pin by setting vertical rate to zero).
            let streams = RngStreams::new(seed);
            let mut wind = WindField::loon_stratosphere(&streams);
            let mut cfg = BalloonConfig::loon_default(kenya_target());
            cfg.vertical_rate_mps = 0.0;
            let mut b = Balloon::new(start, cfg);
            let dt = SimDuration::from_secs(60);
            let mut now = SimTime::ZERO;
            for _ in 0..(3 * 24 * 60) {
                now += dt;
                wind.advance_to(now);
                b.step(now, dt, &wind);
            }
            pinned_sum += b.distance_to_target_m();
        }
        assert!(
            steered_sum < pinned_sum,
            "steering helps on average: steered {steered_sum:.0} vs pinned {pinned_sum:.0}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let start = GeoPoint::new(0.0, 37.5, 17_500.0);
        let a = run_balloon(start, 1, 99);
        let b = run_balloon(start, 1, 99);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.altitude_commands, b.altitude_commands);
    }
}
