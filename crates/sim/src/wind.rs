//! Layered stratospheric wind field.
//!
//! "Loon's Fleet Management Software modeled winds at different
//! altitudes, then automatically instructed balloons to change
//! altitude to catch the desired wind currents" (§2.2). The essential
//! property is *vertical wind shear*: different altitude layers carry
//! different, slowly evolving wind vectors, so altitude choice gives a
//! balloon (limited, probabilistic) steering.
//!
//! Each layer's wind vector follows an Ornstein–Uhlenbeck process
//! around a layer-specific prevailing wind; a mild spatially-varying
//! perturbation decorrelates balloons that are far apart. The OU
//! update is driven by a dedicated RNG stream, so identical seeds give
//! identical weather-systems-scale wind histories.

use crate::rng::RngStreams;
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use tssdn_geo::GeoPoint;

/// Wind at a point: east/north components, m/s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindSample {
    pub east_mps: f64,
    pub north_mps: f64,
}

impl WindSample {
    /// Wind speed, m/s.
    pub fn speed_mps(&self) -> f64 {
        (self.east_mps * self.east_mps + self.north_mps * self.north_mps).sqrt()
    }

    /// Direction the wind blows *toward*, degrees clockwise from
    /// north.
    pub fn heading_deg(&self) -> f64 {
        tssdn_geo::norm_deg(tssdn_geo::rad_to_deg(self.east_mps.atan2(self.north_mps)))
    }
}

/// One altitude layer of the wind field.
#[derive(Debug, Clone)]
pub struct WindLayer {
    /// Bottom of the layer, meters.
    pub floor_m: f64,
    /// Top of the layer, meters.
    pub ceil_m: f64,
    /// Long-term prevailing wind for this layer.
    pub prevailing: WindSample,
    /// Current OU state (deviation from prevailing).
    state: WindSample,
    /// OU mean-reversion rate, 1/s.
    theta: f64,
    /// OU noise magnitude, m/s per sqrt(s).
    sigma: f64,
}

impl WindLayer {
    /// Current layer-average wind.
    pub fn current(&self) -> WindSample {
        WindSample {
            east_mps: self.prevailing.east_mps + self.state.east_mps,
            north_mps: self.prevailing.north_mps + self.state.north_mps,
        }
    }

    fn step(&mut self, dt_s: f64, rng: &mut ChaCha8Rng) {
        // Euler–Maruyama OU update; gaussian noise via Box–Muller from
        // two uniform draws (avoids pulling in rand_distr).
        let sqrt_dt = dt_s.sqrt();
        let (g1, g2) = gaussian_pair(rng);
        self.state.east_mps += -self.theta * self.state.east_mps * dt_s + self.sigma * sqrt_dt * g1;
        self.state.north_mps +=
            -self.theta * self.state.north_mps * dt_s + self.sigma * sqrt_dt * g2;
    }
}

fn gaussian_pair(rng: &mut ChaCha8Rng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let t = 2.0 * std::f64::consts::PI * u2;
    (r * t.cos(), r * t.sin())
}

/// The full layered wind field.
#[derive(Debug, Clone)]
pub struct WindField {
    layers: Vec<WindLayer>,
    rng: ChaCha8Rng,
    last_step: SimTime,
    /// Spatial decorrelation wavelength, meters.
    spatial_wavelength_m: f64,
    /// Magnitude of spatial perturbation, m/s.
    spatial_amplitude_mps: f64,
}

impl WindField {
    /// A Loon-like stratospheric wind column: five layers between 15
    /// and 20 km with distinct prevailing directions (vertical shear),
    /// speeds 4–18 m/s.
    pub fn loon_stratosphere(streams: &RngStreams) -> Self {
        let mut rng = streams.stream("wind-init");
        let mut layers = Vec::new();
        // Prevailing direction rotates with altitude (realistic shear);
        // speeds drawn once at setup from the init stream.
        let base_heading: f64 = rng.gen_range(0.0..360.0);
        for i in 0..5 {
            let floor = 15_000.0 + 1_000.0 * i as f64;
            let heading = tssdn_geo::deg_to_rad(base_heading + 65.0 * i as f64);
            let speed: f64 = rng.gen_range(4.0..18.0);
            layers.push(WindLayer {
                floor_m: floor,
                ceil_m: floor + 1_000.0,
                prevailing: WindSample {
                    east_mps: speed * heading.sin(),
                    north_mps: speed * heading.cos(),
                },
                state: WindSample::default(),
                // Mean reversion over ~6 h; wander of a few m/s.
                theta: 1.0 / (6.0 * 3600.0),
                sigma: 0.05,
            });
        }
        WindField {
            layers,
            rng: streams.stream("wind-evolve"),
            last_step: SimTime::ZERO,
            spatial_wavelength_m: 400_000.0,
            spatial_amplitude_mps: 2.0,
        }
    }

    /// The configured layers.
    pub fn layers(&self) -> &[WindLayer] {
        &self.layers
    }

    /// Advance the field to `now`. Internally steps in ≤10-minute
    /// increments to keep the OU discretization stable.
    pub fn advance_to(&mut self, now: SimTime) {
        const MAX_STEP: SimDuration = SimDuration(600_000);
        while self.last_step < now {
            let next = (self.last_step + MAX_STEP).min(now);
            let dt_s = (next - self.last_step).as_secs_f64();
            for layer in &mut self.layers {
                layer.step(dt_s, &mut self.rng);
            }
            self.last_step = next;
        }
    }

    /// Wind at `pos` (uses the layer containing `pos.alt_m`; clamps to
    /// the nearest layer outside the column).
    pub fn sample(&self, pos: &GeoPoint) -> WindSample {
        let layer = self
            .layers
            .iter()
            .find(|l| pos.alt_m >= l.floor_m && pos.alt_m < l.ceil_m)
            .unwrap_or_else(|| {
                if pos.alt_m < self.layers[0].floor_m {
                    &self.layers[0]
                } else {
                    self.layers.last().expect("non-empty")
                }
            });
        let mut w = layer.current();
        // Deterministic spatial texture: smooth sinusoidal perturbation.
        let x = pos.lon_deg * 111_320.0 * tssdn_geo::deg_to_rad(pos.lat_deg).cos().max(0.2);
        let y = pos.lat_deg * 111_320.0;
        let k = 2.0 * std::f64::consts::PI / self.spatial_wavelength_m;
        w.east_mps += self.spatial_amplitude_mps * (k * y).sin();
        w.north_mps += self.spatial_amplitude_mps * (k * x).cos();
        w
    }

    /// Wind for each layer at a position — what the FMS "wind model"
    /// sees when choosing an altitude.
    pub fn column_at(&self, pos: &GeoPoint) -> Vec<(f64, WindSample)> {
        self.layers
            .iter()
            .map(|l| {
                let mid = (l.floor_m + l.ceil_m) / 2.0;
                let p = GeoPoint::new(pos.lat_deg, pos.lon_deg, mid);
                (mid, self.sample(&p))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> WindField {
        WindField::loon_stratosphere(&RngStreams::new(42))
    }

    #[test]
    fn five_layers_cover_15_to_20km() {
        let f = field();
        assert_eq!(f.layers().len(), 5);
        assert_eq!(f.layers()[0].floor_m, 15_000.0);
        assert_eq!(f.layers()[4].ceil_m, 20_000.0);
    }

    #[test]
    fn layers_have_distinct_headings() {
        let f = field();
        let h0 = f.layers()[0].prevailing.heading_deg();
        let h2 = f.layers()[2].prevailing.heading_deg();
        assert!(
            tssdn_geo::angular_separation_deg(h0, h2) > 30.0,
            "vertical shear exists"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = field();
        let mut b = field();
        let t = SimTime::from_hours(12);
        a.advance_to(t);
        b.advance_to(t);
        let p = GeoPoint::new(0.5, 37.0, 17_500.0);
        assert_eq!(a.sample(&p), b.sample(&p));
    }

    #[test]
    fn advance_is_incremental_consistent() {
        // Advancing in one jump equals advancing in many small steps
        // (same number of internal OU sub-steps).
        let mut a = field();
        let mut b = field();
        a.advance_to(SimTime::from_hours(3));
        for m in 1..=18 {
            b.advance_to(SimTime::from_mins(m * 10));
        }
        let p = GeoPoint::new(0.0, 36.5, 16_200.0);
        let (wa, wb) = (a.sample(&p), b.sample(&p));
        assert!((wa.east_mps - wb.east_mps).abs() < 1e-9);
        assert!((wa.north_mps - wb.north_mps).abs() < 1e-9);
    }

    #[test]
    fn wind_evolves_over_time() {
        let mut f = field();
        let p = GeoPoint::new(0.0, 37.0, 17_500.0);
        let w0 = f.sample(&p);
        f.advance_to(SimTime::from_days(1));
        let w1 = f.sample(&p);
        assert!(
            (w0.east_mps - w1.east_mps).abs() + (w0.north_mps - w1.north_mps).abs() > 0.01,
            "wind wandered"
        );
    }

    #[test]
    fn speeds_stay_physical_over_a_month() {
        let mut f = field();
        for d in 1..=30 {
            f.advance_to(SimTime::from_days(d));
            for l in f.layers() {
                let s = l.current().speed_mps();
                assert!(s < 60.0, "runaway wind {s} m/s on day {d}");
            }
        }
    }

    #[test]
    fn spatial_variation_decorrelates_distant_points() {
        let f = field();
        let a = f.sample(&GeoPoint::new(0.0, 36.0, 17_500.0));
        let b = f.sample(&GeoPoint::new(1.8, 36.0, 17_500.0)); // ~200 km north
        assert!(
            (a.east_mps - b.east_mps).abs() > 1e-3,
            "spatial texture present: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn column_reports_all_layers() {
        let f = field();
        let col = f.column_at(&GeoPoint::new(0.0, 37.0, 17_000.0));
        assert_eq!(col.len(), 5);
        assert_eq!(col[0].0, 15_500.0);
    }

    #[test]
    fn altitude_outside_column_clamps() {
        let f = field();
        let low = f.sample(&GeoPoint::new(0.0, 37.0, 1_000.0));
        let bottom = f.sample(&GeoPoint::new(0.0, 37.0, 15_100.0));
        assert_eq!(low, bottom);
    }
}
