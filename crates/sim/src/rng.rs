//! Named, reproducible random-number streams.
//!
//! One master seed fans out to independent ChaCha8 streams keyed by a
//! stable string name ("winds", "weather", "link-failures", ...). Two
//! subsystems never share a stream, so adding randomness to one never
//! perturbs another — runs stay comparable across experiments, which
//! is what makes the ablations (E10–E12) honest A/B comparisons.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Factory for deterministic per-subsystem RNG streams.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Create a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self { master_seed }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the deterministic stream for `name`.
    pub fn stream(&self, name: &str) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.master_seed ^ fnv1a(name))
    }

    /// Derive a stream for `name` specialized by an index (e.g. one
    /// stream per balloon).
    pub fn indexed_stream(&self, name: &str, index: u64) -> ChaCha8Rng {
        let mixed = fnv1a(name) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ChaCha8Rng::seed_from_u64(self.master_seed ^ mixed)
    }
}

/// FNV-1a over the stream name: stable across runs and platforms
/// (unlike `DefaultHasher`, whose output is unspecified).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a = RngStreams::new(42);
        let b = RngStreams::new(42);
        let xs: Vec<u64> = a
            .stream("winds")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = b
            .stream("winds")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_names_different_streams() {
        let f = RngStreams::new(42);
        let xs: Vec<u64> = f
            .stream("winds")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = f
            .stream("weather")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_different_streams() {
        let xs: Vec<u64> = RngStreams::new(1)
            .stream("w")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = RngStreams::new(2)
            .stream("w")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngStreams::new(7);
        let a: Vec<u64> = f
            .indexed_stream("balloon", 0)
            .sample_iter(rand::distributions::Standard)
            .take(4)
            .collect();
        let b: Vec<u64> = f
            .indexed_stream("balloon", 1)
            .sample_iter(rand::distributions::Standard)
            .take(4)
            .collect();
        assert_ne!(a, b);
        // And reproducible.
        let a2: Vec<u64> = f
            .indexed_stream("balloon", 0)
            .sample_iter(rand::distributions::Standard)
            .take(4)
            .collect();
        assert_eq!(a, a2);
    }
}
