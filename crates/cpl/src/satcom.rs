//! Satellite command channels: queued, rate-limited, slow — and the
//! gateway logic that decides what is even worth sending.
//!
//! Calibration comes straight from §4.2: "satcom round-trip latency
//! could be as little as 23 seconds, but combined across our two
//! providers, was 1m27s at the median, 5m47s at the 90th percentile
//! and 14m50s at the 99th percentile", with a rate limit of "less
//! than one 1 KiB message per minute per balloon". One-way latency is
//! modelled as a shifted log-normal fitted to half those RTT
//! quantiles.
//!
//! The gateway implements the paper's drop rules: messages that would
//! not arrive by their TTE and messages that require in-band
//! connectivity are dropped rather than queued (§4.2 "Message
//! Queuing"). The TS-SDN is *not* notified — it discovers the loss by
//! timeout, one of the pathologies §4.2 calls out.

use crate::message::Command;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};
use tssdn_sim::{PlatformId, SimDuration, SimTime};

/// One provider's latency/rate parameters.
#[derive(Debug, Clone, Copy)]
pub struct SatcomConfig {
    /// Hard latency floor, seconds (propagation + relay scheduling).
    pub floor_s: f64,
    /// Log-normal μ of the variable one-way delay component.
    pub mu: f64,
    /// Log-normal σ of the variable one-way delay component.
    pub sigma: f64,
    /// Minimum spacing between messages to the same balloon.
    pub per_dest_interval: SimDuration,
}

impl SatcomConfig {
    /// The GEO IoT-messaging provider: higher floor, tighter spread.
    pub fn geo_provider() -> Self {
        // One-way ≈ RTT/2: floor ~11.5 s; median ~45 s ⇒ variable
        // median ~33 s ⇒ μ = ln 33 ≈ 3.5; p90/p99 tails from σ ≈ 1.05.
        SatcomConfig {
            floor_s: 11.5,
            mu: 3.5,
            sigma: 1.05,
            per_dest_interval: SimDuration::from_secs(60),
        }
    }

    /// The LEO provider: lower floor, longer scheduling tail (store
    /// and forward between passes).
    pub fn leo_provider() -> Self {
        SatcomConfig {
            floor_s: 5.0,
            mu: 3.7,
            sigma: 1.15,
            per_dest_interval: SimDuration::from_secs(60),
        }
    }

    /// Sample a one-way delivery latency.
    pub fn sample_one_way(&self, rng: &mut ChaCha8Rng) -> SimDuration {
        let (u1, u2): (f64, f64) = (
            rng.gen_range(f64::MIN_POSITIVE..1.0),
            rng.gen_range(0.0..1.0),
        );
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let variable = (self.mu + self.sigma * g).exp();
        SimDuration(((self.floor_s + variable) * 1000.0) as u64)
    }

    /// Expected (median) one-way latency — what the gateway uses for
    /// its arrive-by-TTE prediction.
    pub fn median_one_way(&self) -> SimDuration {
        SimDuration(((self.floor_s + self.mu.exp()) * 1000.0) as u64)
    }
}

/// Terminal outcome of a satcom send.
#[derive(Debug, Clone)]
pub enum SatcomOutcome {
    /// Delivered to the node at `at` (≤ TTE, usable).
    Delivered {
        cmd: Command,
        at: SimTime,
        provider: u8,
    },
    /// Physically arrived after its TTE; the node discarded it.
    ArrivedLate {
        cmd: Command,
        at: SimTime,
        provider: u8,
    },
    /// Dropped at the gateway: predicted to miss the TTE.
    DroppedLate { cmd: Command, provider: u8 },
    /// Dropped at the gateway: requires in-band connectivity.
    DroppedNeedsInband { cmd: Command },
}

#[derive(Debug)]
struct Queued {
    cmd: Command,
}

#[derive(Debug)]
struct InFlight {
    cmd: Command,
    provider: u8,
    arrives: SimTime,
}

/// The satcom gateway: provider selection, per-destination rate
/// limiting, queueing, drop rules, and delivery.
pub struct SatcomGateway {
    providers: Vec<SatcomConfig>,
    /// Next allowed transmission slot per (provider, destination).
    next_slot: BTreeMap<(u8, PlatformId), SimTime>,
    queue: VecDeque<Queued>,
    in_flight: Vec<InFlight>,
    rng: ChaCha8Rng,
    /// Gateway statistics.
    pub sent: u64,
    /// Messages dropped by either rule.
    pub dropped: u64,
    /// Brownout latency multiplier (1.0 = nominal). Set by the fault
    /// engine while a satcom-brownout window is active.
    pub latency_scale: f64,
    /// Brownout silent-loss probability for in-flight messages
    /// (0.0 = nominal). Drawn only when positive, so chaos-free runs
    /// consume no RNG.
    pub brownout_drop_prob: f64,
    /// Messages silently lost to brownouts (the TS-SDN times out).
    pub brownout_lost: u64,
}

impl SatcomGateway {
    /// A gateway over the two Loon-like providers.
    pub fn new(rng: ChaCha8Rng) -> Self {
        SatcomGateway {
            providers: vec![SatcomConfig::geo_provider(), SatcomConfig::leo_provider()],
            next_slot: BTreeMap::new(),
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            rng,
            sent: 0,
            dropped: 0,
            latency_scale: 1.0,
            brownout_drop_prob: 0.0,
            brownout_lost: 0,
        }
    }

    /// Number of configured providers.
    pub fn num_providers(&self) -> usize {
        self.providers.len()
    }

    /// Provider config (for TTE estimation by the frontend).
    pub fn provider(&self, i: u8) -> &SatcomConfig {
        &self.providers[i as usize]
    }

    /// Estimated delivery time if `cmd` were submitted now: earliest
    /// over providers of `max(now, next_slot) + median latency`.
    pub fn estimate_delivery(&self, dest: PlatformId, now: SimTime) -> SimTime {
        (0..self.providers.len() as u8)
            .map(|p| self.ready_at(p, dest, now) + self.providers[p as usize].median_one_way())
            .min()
            .expect("at least one provider")
    }

    fn ready_at(&self, provider: u8, dest: PlatformId, now: SimTime) -> SimTime {
        self.next_slot
            .get(&(provider, dest))
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(now)
    }

    /// Submit a command. Returns `false` when dropped immediately
    /// (requires in-band). The TS-SDN is not told — it must time out.
    pub fn submit(&mut self, cmd: Command, _now: SimTime, out: &mut Vec<SatcomOutcome>) -> bool {
        if cmd.body.requires_inband() {
            self.dropped += 1;
            out.push(SatcomOutcome::DroppedNeedsInband { cmd });
            return false;
        }
        self.queue.push_back(Queued { cmd });
        true
    }

    /// Advance the gateway: service queued messages whose rate-limit
    /// slot has arrived, apply the drop-if-late rule, and complete
    /// deliveries. Outcomes are appended to `out`.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<SatcomOutcome>) {
        // Complete arrivals.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].arrives <= now {
                let f = self.in_flight.swap_remove(i);
                if f.arrives <= f.cmd.tte {
                    out.push(SatcomOutcome::Delivered {
                        cmd: f.cmd,
                        at: f.arrives,
                        provider: f.provider,
                    });
                } else {
                    out.push(SatcomOutcome::ArrivedLate {
                        cmd: f.cmd,
                        at: f.arrives,
                        provider: f.provider,
                    });
                }
            } else {
                i += 1;
            }
        }

        // Service the queue in FIFO order, choosing "the network with
        // lowest expected delivery time" (§4.2) *at service time*, so
        // slot consumption by earlier messages is visible. Messages
        // whose best slot has not arrived yet are requeued
        // (head-of-line blocking is part of the modelled pathology).
        let mut requeue = VecDeque::new();
        while let Some(q) = self.queue.pop_front() {
            let provider = (0..self.providers.len() as u8)
                .min_by_key(|p| {
                    self.ready_at(*p, q.cmd.dest, now)
                        + self.providers[*p as usize].median_one_way()
                })
                .expect("providers");
            if self.ready_at(provider, q.cmd.dest, now) > now {
                requeue.push_back(q);
                continue;
            }
            let cfg = self.providers[provider as usize];
            // Drop rule: predicted (median) arrival after TTE.
            if now + cfg.median_one_way() > q.cmd.tte {
                self.dropped += 1;
                out.push(SatcomOutcome::DroppedLate {
                    cmd: q.cmd,
                    provider,
                });
                continue;
            }
            let mut latency = cfg.sample_one_way(&mut self.rng);
            if self.latency_scale != 1.0 {
                latency = latency.mul_f64(self.latency_scale.max(1.0));
            }
            self.next_slot
                .insert((provider, q.cmd.dest), now + cfg.per_dest_interval);
            // Brownout: the message leaves the gateway but never makes
            // it to the balloon. No outcome is reported — like every
            // other satcom loss, the frontend learns by timeout.
            if self.brownout_drop_prob > 0.0 && self.rng.gen_bool(self.brownout_drop_prob.min(1.0))
            {
                self.brownout_lost += 1;
                continue;
            }
            self.sent += 1;
            self.in_flight.push(InFlight {
                arrives: now + latency,
                cmd: q.cmd,
                provider,
            });
        }
        self.queue = requeue;
    }

    /// Queue depth (invisible to the frontend when it sets TTEs — a
    /// §4.2 "challenge" the ablations quantify).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CommandBody, CommandId};
    use tssdn_link::TransceiverId;
    use tssdn_sim::RngStreams;

    fn rng() -> ChaCha8Rng {
        RngStreams::new(7).stream("satcom-test")
    }

    fn link_cmd(id: u64, dest: u32, tte_s: u64, now: SimTime) -> Command {
        Command {
            id: CommandId(id),
            dest: PlatformId(dest),
            body: CommandBody::EstablishLink {
                intent_id: id,
                local: TransceiverId::new(PlatformId(dest), 0),
                peer: TransceiverId::new(PlatformId(dest + 1), 0),
            },
            tte: SimTime::from_secs(tte_s),
            submitted: now,
        }
    }

    #[test]
    fn latency_quantiles_match_paper_scale() {
        // Combined two-provider one-way latency should show: best
        // cases near 11–15 s, median well under 2 min, p99 in the
        // many-minutes range (Figure 9's satcom RTT is 2× these).
        let mut r = rng();
        let geo = SatcomConfig::geo_provider();
        let leo = SatcomConfig::leo_provider();
        let mut xs: Vec<f64> = (0..4000)
            .map(|i| {
                let c = if i % 2 == 0 { &geo } else { &leo };
                c.sample_one_way(&mut r).as_secs_f64()
            })
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| xs[(p * (xs.len() - 1) as f64) as usize];
        assert!(q(0.0) >= 5.0 && q(0.01) < 25.0, "best ≈ floor: {}", q(0.0));
        let median = q(0.5);
        assert!(
            (30.0..70.0).contains(&median),
            "one-way median ≈ 43 s, got {median}"
        );
        let p90 = q(0.9);
        assert!(
            (100.0..300.0).contains(&p90),
            "one-way p90 ≈ 170 s, got {p90}"
        );
        let p99 = q(0.99);
        assert!(p99 > 300.0, "minutes-long tail, got {p99}");
    }

    #[test]
    fn route_updates_dropped_needing_inband() {
        let mut gw = SatcomGateway::new(rng());
        let mut out = Vec::new();
        let cmd = Command {
            id: CommandId(1),
            dest: PlatformId(3),
            body: CommandBody::SetRoutes {
                version: 1,
                entries: 8,
            },
            tte: SimTime::from_secs(600),
            submitted: SimTime::ZERO,
        };
        assert!(!gw.submit(cmd, SimTime::ZERO, &mut out));
        assert!(matches!(out[0], SatcomOutcome::DroppedNeedsInband { .. }));
        assert_eq!(gw.dropped, 1);
    }

    #[test]
    fn delivery_happens_and_respects_tte() {
        let mut gw = SatcomGateway::new(rng());
        let mut out = Vec::new();
        // Generous TTE: should deliver.
        let cmd = link_cmd(1, 3, 1200, SimTime::ZERO);
        gw.submit(cmd, SimTime::ZERO, &mut out);
        let mut t = SimTime::ZERO;
        while out.is_empty() && t < SimTime::from_secs(1200) {
            t += SimDuration::from_secs(1);
            gw.poll(t, &mut out);
        }
        assert!(matches!(out[0], SatcomOutcome::Delivered { .. }), "{out:?}");
        if let SatcomOutcome::Delivered { at, .. } = &out[0] {
            assert!(*at >= SimTime::from_secs(5), "satcom is never instant");
        }
    }

    #[test]
    fn hopeless_tte_dropped_at_gateway() {
        let mut gw = SatcomGateway::new(rng());
        let mut out = Vec::new();
        // TTE 10 s away: median latency can't make it.
        let cmd = link_cmd(1, 3, 10, SimTime::ZERO);
        gw.submit(cmd, SimTime::ZERO, &mut out);
        gw.poll(SimTime::from_secs(1), &mut out);
        assert!(
            matches!(out[0], SatcomOutcome::DroppedLate { .. }),
            "{out:?}"
        );
    }

    #[test]
    fn per_destination_rate_limit_queues_messages() {
        let mut gw = SatcomGateway::new(rng());
        let mut out = Vec::new();
        // Four commands to the same balloon at once: both providers'
        // slots are consumed by the first two; the rest queue.
        for i in 0..4 {
            gw.submit(link_cmd(i, 3, 3600, SimTime::ZERO), SimTime::ZERO, &mut out);
        }
        gw.poll(SimTime::from_secs(1), &mut out);
        assert_eq!(gw.sent, 2, "one per provider immediately");
        assert_eq!(gw.queue_depth(), 2, "rest rate-limited");
        // After the 60 s interval the next pair goes out.
        gw.poll(SimTime::from_secs(62), &mut out);
        assert_eq!(gw.sent, 4);
        assert_eq!(gw.queue_depth(), 0);
    }

    #[test]
    fn different_destinations_not_blocked_by_each_other() {
        let mut gw = SatcomGateway::new(rng());
        let mut out = Vec::new();
        for d in 0..6u32 {
            gw.submit(
                link_cmd(d as u64, d, 3600, SimTime::ZERO),
                SimTime::ZERO,
                &mut out,
            );
        }
        gw.poll(SimTime::from_secs(1), &mut out);
        assert_eq!(gw.sent, 6, "rate limit is per destination");
    }

    #[test]
    fn estimate_accounts_for_consumed_slots() {
        let mut gw = SatcomGateway::new(rng());
        let mut out = Vec::new();
        let e0 = gw.estimate_delivery(PlatformId(3), SimTime::ZERO);
        for i in 0..2 {
            gw.submit(link_cmd(i, 3, 3600, SimTime::ZERO), SimTime::ZERO, &mut out);
        }
        gw.poll(SimTime::from_secs(1), &mut out);
        let e1 = gw.estimate_delivery(PlatformId(3), SimTime::from_secs(1));
        assert!(e1 > e0, "both slots consumed pushes the estimate out");
    }
}
