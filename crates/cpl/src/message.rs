//! Command envelopes carried over the control channels.

use tssdn_link::TransceiverId;
use tssdn_sim::{PlatformId, SimTime};

/// Unique command identifier assigned by the CDPI frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommandId(pub u64);

impl std::fmt::Display for CommandId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmd{}", self.0)
    }
}

/// Which control channel a message travelled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// One of the satellite providers (index 0 or 1).
    Satcom(u8),
    /// The MANET-routed in-band path.
    InBand,
    /// The one-hop LoRaWAN bootstrap channel (§2.2 prototype; off by
    /// default).
    LoRa,
}

/// Coarse intent classification for Figure 9's two distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntentKind {
    /// Link establishment / teardown.
    Link,
    /// Route table programming.
    Route,
}

/// The payload of a CDPI command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandBody {
    /// Task a local transceiver to form a link with a peer at the TTE.
    /// Both endpoints of the intent receive one of these (§4.1 Tier 0:
    /// "an analogous message would be sent to the peer platform").
    EstablishLink {
        /// Link-intent id shared by both endpoint commands.
        intent_id: u64,
        /// The transceiver on the receiving node to task.
        local: TransceiverId,
        /// The remote transceiver to search for.
        peer: TransceiverId,
    },
    /// Tear a link down gracefully (planned withdrawal).
    TeardownLink {
        /// The intent being withdrawn.
        intent_id: u64,
    },
    /// Program source-destination routes. Routes are referenced by a
    /// version the data plane fetches; the control channel only needs
    /// the size. "Forwarding table updates" required in-band delivery
    /// (§4.2 Message Queuing).
    SetRoutes {
        /// Monotonic route-table version.
        version: u64,
        /// Number of entries (drives message size).
        entries: u16,
    },
}

impl CommandBody {
    /// Figure-9 classification.
    pub fn kind(&self) -> IntentKind {
        match self {
            CommandBody::EstablishLink { .. } | CommandBody::TeardownLink { .. } => {
                IntentKind::Link
            }
            CommandBody::SetRoutes { .. } => IntentKind::Route,
        }
    }

    /// Whether this command is useless without in-band connectivity
    /// and must be dropped rather than queued on satcom (§4.2: the
    /// gateway dropped messages that "required in-band connectivity
    /// (e.g. forwarding table updates)").
    pub fn requires_inband(&self) -> bool {
        matches!(self, CommandBody::SetRoutes { .. })
    }

    /// Approximate wire size after the CDPI proxy's bitpacking, bytes.
    /// Satcom messages had to fit ~1 KiB (§4.1).
    pub fn size_bytes(&self) -> usize {
        match self {
            CommandBody::EstablishLink { .. } => 160, // pointing geometry + channel params + signature
            CommandBody::TeardownLink { .. } => 48,
            CommandBody::SetRoutes { entries, .. } => 32 + 24 * (*entries as usize),
        }
    }
}

/// A command in flight: envelope plus routing metadata.
#[derive(Debug, Clone)]
pub struct Command {
    /// Frontend-assigned id.
    pub id: CommandId,
    /// Destination node.
    pub dest: PlatformId,
    /// Payload.
    pub body: CommandBody,
    /// Synchronized enactment time. Commands arriving after this are
    /// discarded by the node.
    pub tte: SimTime,
    /// When the frontend first submitted the command (for metrics).
    pub submitted: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssdn_link::TransceiverId;

    fn tid(p: u32, i: u8) -> TransceiverId {
        TransceiverId::new(PlatformId(p), i)
    }

    #[test]
    fn kinds_classify_for_figure_9() {
        let e = CommandBody::EstablishLink {
            intent_id: 1,
            local: tid(0, 0),
            peer: tid(1, 0),
        };
        let t = CommandBody::TeardownLink { intent_id: 1 };
        let r = CommandBody::SetRoutes {
            version: 3,
            entries: 10,
        };
        assert_eq!(e.kind(), IntentKind::Link);
        assert_eq!(t.kind(), IntentKind::Link);
        assert_eq!(r.kind(), IntentKind::Route);
    }

    #[test]
    fn route_updates_require_inband() {
        assert!(CommandBody::SetRoutes {
            version: 1,
            entries: 4
        }
        .requires_inband());
        assert!(!CommandBody::TeardownLink { intent_id: 9 }.requires_inband());
        assert!(!CommandBody::EstablishLink {
            intent_id: 1,
            local: tid(0, 0),
            peer: tid(1, 0)
        }
        .requires_inband());
    }

    #[test]
    fn sizes_fit_satcom_budget() {
        let e = CommandBody::EstablishLink {
            intent_id: 1,
            local: tid(0, 0),
            peer: tid(1, 0),
        };
        assert!(e.size_bytes() <= 1024, "fits the ~1 KiB satcom slot");
        let big = CommandBody::SetRoutes {
            version: 1,
            entries: 40,
        };
        assert!(big.size_bytes() > 900, "route tables are satcom-hostile");
    }
}
