//! The CDPI frontend: channel selection, TTE computation, retries,
//! side-channel inference, and enactment metrics.
//!
//! §4.2 in code form:
//!
//! * **Channel selection** — "the TS-SDN monitored connectivity and
//!   directed messages along the lowest latency path": in-band when a
//!   fresh heartbeat says the node is connected, satcom otherwise.
//! * **Time to enact** — "for commands using satcom, the 95th
//!   percentile of one-way command delivery delay was added to the
//!   TTE. If in-band paths were available to all updating nodes, then
//!   a three-second delay was added", and an intent's TTE is "the
//!   longest delay" over all its recipient nodes. Once set, a TTE is
//!   never upgraded (a pathology the paper calls out; the ablation
//!   keeps it faithful).
//! * **Retries** — "when the TS-SDN didn't get a response back, it
//!   cycled through the available channels based on priority, set a
//!   new TTE, and retried the command."
//! * **Side channel** — a balloon's in-band connection appearing
//!   confirms a pending link-establishment intent "many seconds
//!   before the satcom response arrived".

use crate::inband::{InbandChannel, InbandOutcome};
use crate::lora::{LoraChannel, LoraOutcome};
use crate::message::{Channel, Command, CommandBody, CommandId, IntentKind};
use crate::satcom::{SatcomGateway, SatcomOutcome};
use rand::Rng;
use std::collections::BTreeMap;
use tssdn_sim::{PlatformId, RngStreams, SimDuration, SimTime};

/// Frontend tunables.
#[derive(Debug, Clone, Copy)]
pub struct CdpiConfig {
    /// TTE margin when any recipient needs satcom (the p95 one-way
    /// delay; "an extra 3m6s TTE delay", §4.2).
    pub satcom_tte_margin: SimDuration,
    /// TTE margin when all recipients are in-band.
    pub inband_tte_margin: SimDuration,
    /// Response timeout for link commands (boot + search can take
    /// 2m30s on top of delivery).
    pub link_timeout: SimDuration,
    /// Response timeout for route commands.
    pub route_timeout: SimDuration,
    /// Give up after this many attempts.
    pub max_attempts: u32,
    /// Enable the prototype LoRaWAN bootstrap channel (§2.2). Off by
    /// default — Loon never deployed it; E15 measures what it buys.
    pub lora_enabled: bool,
    /// TTE margin when LoRa carries the slowest command of an intent.
    pub lora_tte_margin: SimDuration,
    /// First-retry backoff; attempt `n` waits `base · 2^(n-1)` (plus
    /// deterministic jitter) before redispatching. Immediate retries
    /// against a dead channel only feed the satcom rate limiter.
    pub retry_backoff_base: SimDuration,
    /// Ceiling on the exponential backoff.
    pub retry_backoff_cap: SimDuration,
}

impl Default for CdpiConfig {
    fn default() -> Self {
        CdpiConfig {
            satcom_tte_margin: SimDuration::from_secs(186),
            inband_tte_margin: SimDuration::from_secs(3),
            link_timeout: SimDuration::from_secs(240),
            route_timeout: SimDuration::from_secs(10),
            max_attempts: 4,
            lora_enabled: false,
            lora_tte_margin: SimDuration::from_secs(10),
            retry_backoff_base: SimDuration::from_secs(5),
            retry_backoff_cap: SimDuration::from_secs(60),
        }
    }
}

/// Delivery-boundary chaos knobs (normally all zero; driven by the
/// fault engine during command-channel fault windows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommandChaosParams {
    /// Probability a delivered command is corrupted: the receiver's
    /// integrity check discards it silently (no execution, no ack).
    pub corrupt_prob: f64,
    /// Probability a delivered command arrives twice.
    pub duplicate_prob: f64,
    /// Probability a poll's delivery batch arrives reordered.
    pub reorder_prob: f64,
}

impl CommandChaosParams {
    fn quiet(&self) -> bool {
        self.corrupt_prob <= 0.0 && self.duplicate_prob <= 0.0 && self.reorder_prob <= 0.0
    }
}

/// Deterministic retry jitter: a hash of (command, attempt) so equal
/// runs back off identically while distinct commands desynchronize.
fn deterministic_jitter_ms(id: CommandId, attempt: u32, max_ms: u64) -> u64 {
    if max_ms == 0 {
        return 0;
    }
    let mut z = id.0 ^ ((attempt as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % max_ms
}

/// Events surfaced to the orchestrator.
#[derive(Debug, Clone)]
pub enum CdpiEvent {
    /// A command physically reached its node (enact at its TTE).
    DeliveredToNode {
        cmd: Command,
        at: SimTime,
        channel: Channel,
    },
    /// An intent fully confirmed (all commands acked, or success
    /// inferred via the in-band side channel).
    IntentConfirmed {
        intent_id: u64,
        kind: IntentKind,
        at: SimTime,
        elapsed: SimDuration,
    },
    /// A command timed out and was retried on a (possibly different)
    /// channel with a fresh TTE.
    Retried {
        id: CommandId,
        attempt: u32,
        channel: Channel,
    },
    /// A command exhausted its attempts.
    Expired { id: CommandId, intent_id: u64 },
}

/// Completed-intent metrics for Figure 9.
#[derive(Debug, Clone, Copy)]
pub struct EnactmentRecord {
    /// Link or Route.
    pub kind: IntentKind,
    /// Submission time of the intent.
    pub submitted: SimTime,
    /// Confirmation time.
    pub confirmed: SimTime,
    /// Whether any command of the intent travelled via satcom.
    pub used_satcom: bool,
}

impl EnactmentRecord {
    /// Submission-to-confirmation delay, seconds.
    pub fn elapsed_s(&self) -> f64 {
        (self.confirmed - self.submitted).as_secs_f64()
    }
}

#[derive(Debug)]
struct Outstanding {
    cmd: Command,
    intent_id: u64,
    channel: Channel,
    attempt: u32,
    timeout_at: SimTime,
    acked: bool,
    /// Timed out and waiting in the backoff queue for redispatch.
    awaiting_backoff: bool,
}

#[derive(Debug)]
struct IntentState {
    kind: IntentKind,
    submitted: SimTime,
    commands: Vec<CommandId>,
    confirmed: Option<SimTime>,
    used_satcom: bool,
}

/// The frontend itself. Owns the satcom gateway and in-band channel.
pub struct CdpiFrontend {
    /// The satcom path (gateway + two providers).
    pub satcom: SatcomGateway,
    /// The in-band path.
    pub inband: InbandChannel,
    /// The optional LoRa bootstrap path.
    pub lora: LoraChannel,
    /// Delivery-boundary chaos (all-zero when no fault is active).
    pub chaos: CommandChaosParams,
    config: CdpiConfig,
    next_cmd: u64,
    next_intent: u64,
    outstanding: BTreeMap<CommandId, Outstanding>,
    intents: BTreeMap<u64, IntentState>,
    /// Pending transport acks: (arrives, command id).
    acks: Vec<(SimTime, CommandId)>,
    /// Commands waiting out their retry backoff: (redispatch, id).
    pending_retries: Vec<(SimTime, CommandId)>,
    /// Receiver-side idempotency ledger: command ids already executed.
    /// A replayed delivery re-acks (its ack may have been lost) but is
    /// never re-executed.
    delivered_seen: std::collections::BTreeSet<CommandId>,
    records: Vec<EnactmentRecord>,
    rng: rand_chacha::ChaCha8Rng,
    /// Chaos draws come from their own stream so runs with chaos off
    /// are bit-identical to pre-chaos behavior.
    chaos_rng: rand_chacha::ChaCha8Rng,
    /// Deliveries discarded by the receiver's integrity check.
    pub chaos_corrupted: u64,
    /// Deliveries duplicated in flight.
    pub chaos_duplicated: u64,
    /// Replayed deliveries suppressed by the idempotency ledger.
    pub dedup_suppressed: u64,
}

impl CdpiFrontend {
    /// Build a frontend with its own deterministic streams.
    pub fn new(config: CdpiConfig, streams: &RngStreams) -> Self {
        CdpiFrontend {
            satcom: SatcomGateway::new(streams.stream("cpl-satcom")),
            inband: InbandChannel::new(streams.stream("cpl-inband")),
            lora: LoraChannel::new(streams.stream("cpl-lora")),
            chaos: CommandChaosParams::default(),
            config,
            next_cmd: 0,
            next_intent: 0,
            outstanding: BTreeMap::new(),
            intents: BTreeMap::new(),
            acks: Vec::new(),
            pending_retries: Vec::new(),
            delivered_seen: std::collections::BTreeSet::new(),
            records: Vec::new(),
            rng: streams.stream("cpl-acks"),
            chaos_rng: streams.stream("cpl-chaos"),
            chaos_corrupted: 0,
            chaos_duplicated: 0,
            dedup_suppressed: 0,
        }
    }

    /// Completed-intent metrics so far.
    pub fn records(&self) -> &[EnactmentRecord] {
        &self.records
    }

    /// Submit a multi-node intent. Returns `(intent_id, tte)` — the
    /// common TTE all member commands carry.
    pub fn submit_intent(
        &mut self,
        parts: Vec<(PlatformId, CommandBody)>,
        now: SimTime,
    ) -> (u64, SimTime) {
        assert!(!parts.is_empty(), "an intent needs at least one command");
        let kind = parts[0].1.kind();
        // TTE: longest margin over all recipients (§4.2 Challenges).
        let all_inband = parts.iter().all(|(d, _)| self.inband.is_reachable(*d, now));
        let all_fast = parts.iter().all(|(d, b)| {
            self.inband.is_reachable(*d, now)
                || (self.config.lora_enabled
                    && self.lora.is_covered(*d)
                    && b.size_bytes() <= self.lora.max_payload)
        });
        let tte = if all_inband {
            now + self.config.inband_tte_margin
        } else if all_fast {
            now + self.config.lora_tte_margin
        } else {
            now + self.config.satcom_tte_margin
        };
        let intent_id = self.next_intent;
        self.next_intent += 1;
        let mut ids = Vec::new();
        let mut used_satcom = false;
        for (dest, body) in parts {
            let id = CommandId(self.next_cmd);
            self.next_cmd += 1;
            let cmd = Command {
                id,
                dest,
                body,
                tte,
                submitted: now,
            };
            let channel = self.dispatch(cmd.clone(), now);
            if matches!(channel, Channel::Satcom(_)) {
                used_satcom = true;
            }
            let timeout = self.timeout_for(kind, channel);
            self.outstanding.insert(
                id,
                Outstanding {
                    cmd,
                    intent_id,
                    channel,
                    attempt: 1,
                    timeout_at: tte + timeout,
                    acked: false,
                    awaiting_backoff: false,
                },
            );
            ids.push(id);
        }
        self.intents.insert(
            intent_id,
            IntentState {
                kind,
                submitted: now,
                commands: ids,
                confirmed: None,
                used_satcom,
            },
        );
        (intent_id, tte)
    }

    fn timeout_for(&self, kind: IntentKind, _channel: Channel) -> SimDuration {
        match kind {
            IntentKind::Link => self.config.link_timeout,
            // Route commands use one short timeout everywhere: they
            // can't ride satcom at all, and a LoRa frame won't fit a
            // table either, so the retry ladder must spin quickly.
            IntentKind::Route => self.config.route_timeout,
        }
    }

    /// Pick the lowest-latency available channel and hand the command
    /// to it. Returns the channel used.
    fn dispatch(&mut self, cmd: Command, now: SimTime) -> Channel {
        if self.inband.is_reachable(cmd.dest, now) && self.inband.submit(cmd.clone(), now) {
            return Channel::InBand;
        }
        if self.config.lora_enabled && self.lora.submit(cmd.clone(), now) {
            return Channel::LoRa;
        }
        let mut sink = Vec::new();
        self.satcom.submit(cmd, now, &mut sink);
        // Provider choice happens inside the gateway; report 0 as the
        // nominal satcom channel (callers only branch on the variant).
        Channel::Satcom(0)
    }

    /// A balloon's in-band connection appeared (heartbeat). Beyond
    /// updating reachability, a *new* connection is the side channel:
    /// pending link-establishment intents touching `node` are
    /// confirmed, because the node showing up in-band proves the
    /// commanded topology enacted. A steady-state heartbeat must NOT
    /// re-trigger the inference — confirming an intent strips its
    /// commands from the retry machinery, and a command whose delivery
    /// is still in flight (or lost) would then never be retried.
    pub fn node_connected_inband(
        &mut self,
        node: PlatformId,
        hops: u32,
        now: SimTime,
    ) -> Vec<CdpiEvent> {
        let was_reachable = self.inband.is_reachable(node, now);
        self.inband.set_reachable(node, hops, now);
        let mut events = Vec::new();
        if was_reachable {
            // Already connected: command confirmation rides the normal
            // in-band acks, not the side channel.
            return events;
        }
        // Side-channel inference for link intents touching this node.
        let candidates: Vec<u64> = self
            .outstanding
            .values()
            .filter(|o| {
                o.cmd.dest == node && matches!(o.cmd.body, CommandBody::EstablishLink { .. })
            })
            .map(|o| o.intent_id)
            .collect();
        for intent_id in candidates {
            if let Some(ev) = self.confirm_intent(intent_id, now) {
                events.push(ev);
            }
        }
        events
    }

    /// Mark a node unreachable in-band (heartbeats stopped).
    pub fn node_disconnected_inband(&mut self, node: PlatformId) {
        self.inband.set_unreachable(node);
    }

    /// Orchestrator-visible confirmation (e.g. it observed the link
    /// actually established, or routes verified). Idempotent.
    pub fn confirm_intent(&mut self, intent_id: u64, now: SimTime) -> Option<CdpiEvent> {
        let st = self.intents.get_mut(&intent_id)?;
        if st.confirmed.is_some() {
            return None;
        }
        st.confirmed = Some(now);
        let elapsed = now - st.submitted;
        self.records.push(EnactmentRecord {
            kind: st.kind,
            submitted: st.submitted,
            confirmed: now,
            used_satcom: st.used_satcom,
        });
        // Drop the member commands from the retry machinery.
        for id in st.commands.clone() {
            self.outstanding.remove(&id);
        }
        Some(CdpiEvent::IntentConfirmed {
            intent_id,
            kind: st.kind,
            at: now,
            elapsed,
        })
    }

    /// Advance all channels; returns events for the orchestrator.
    pub fn poll(&mut self, now: SimTime) -> Vec<CdpiEvent> {
        let mut events = Vec::new();

        // Gather raw deliveries from every channel, keeping each ack's
        // return latency with it: (cmd, delivered_at, channel, ack_at).
        let mut deliveries: Vec<(Command, SimTime, Channel, SimTime)> = Vec::new();

        // Satcom outcomes.
        let mut sat = Vec::new();
        self.satcom.poll(now, &mut sat);
        for o in sat {
            match o {
                SatcomOutcome::Delivered { cmd, at, provider } => {
                    // Transport-level ack returns over the same
                    // provider with another one-way latency.
                    let ack_latency = self.satcom.provider(provider).sample_one_way(&mut self.rng);
                    deliveries.push((cmd, at, Channel::Satcom(provider), at + ack_latency));
                }
                // Invisible to the frontend: it only learns by timeout
                // (§4.2 wishes for prompt discard notification).
                SatcomOutcome::ArrivedLate { .. }
                | SatcomOutcome::DroppedLate { .. }
                | SatcomOutcome::DroppedNeedsInband { .. } => {}
            }
        }

        // LoRa outcomes: class-A ack rides the next uplink window.
        let mut lo = Vec::new();
        self.lora.poll(now, &mut lo);
        for o in lo {
            match o {
                LoraOutcome::Delivered { cmd, at } => {
                    deliveries.push((cmd, at, Channel::LoRa, at + SimDuration::from_secs(3)));
                }
                LoraOutcome::Lost { .. } => {}
            }
        }

        // In-band outcomes.
        let mut inb = Vec::new();
        self.inband.poll(now, &mut inb);
        for o in inb {
            match o {
                InbandOutcome::Delivered { cmd, at } => {
                    // In-band acks ride the same connection: fast.
                    deliveries.push((cmd, at, Channel::InBand, at + SimDuration(200)));
                }
                InbandOutcome::Lost { .. } => {}
            }
        }

        // Delivery-boundary chaos: corruption discards a command at
        // the receiver (no execution, no ack — the frontend must time
        // out), duplication replays it, reordering scrambles the
        // batch. Draws come from the dedicated chaos stream and only
        // happen while a fault window is active, so quiet runs are
        // untouched.
        if !self.chaos.quiet() {
            let mut mutated: Vec<(Command, SimTime, Channel, SimTime)> =
                Vec::with_capacity(deliveries.len());
            for d in deliveries {
                if self.chaos.corrupt_prob > 0.0
                    && self.chaos_rng.gen_bool(self.chaos.corrupt_prob.min(1.0))
                {
                    self.chaos_corrupted += 1;
                    continue;
                }
                let dup = self.chaos.duplicate_prob > 0.0
                    && self.chaos_rng.gen_bool(self.chaos.duplicate_prob.min(1.0));
                mutated.push(d.clone());
                if dup {
                    self.chaos_duplicated += 1;
                    mutated.push(d);
                }
            }
            if mutated.len() > 1
                && self.chaos.reorder_prob > 0.0
                && self.chaos_rng.gen_bool(self.chaos.reorder_prob.min(1.0))
            {
                mutated.reverse();
            }
            deliveries = mutated;
        }

        // Receiver-side idempotency: each command id executes once.
        // Replays (chaos duplicates, or redundant retries whose first
        // copy landed but whose ack was slow or lost) re-ack without
        // re-executing.
        for (cmd, at, channel, ack_at) in deliveries {
            let fresh = self.delivered_seen.insert(cmd.id);
            self.acks.push((ack_at, cmd.id));
            if fresh {
                events.push(CdpiEvent::DeliveredToNode { cmd, at, channel });
            } else {
                self.dedup_suppressed += 1;
            }
        }

        // Ack arrivals → per-command confirmation; intent confirms
        // when all commands are acked.
        let mut due: Vec<CommandId> = Vec::new();
        self.acks.retain(|(at, id)| {
            if *at <= now {
                due.push(*id);
                false
            } else {
                true
            }
        });
        for id in due {
            let Some(o) = self.outstanding.get_mut(&id) else {
                continue;
            };
            o.acked = true;
            let intent_id = o.intent_id;
            let all_acked = self
                .intents
                .get(&intent_id)
                .map(|st| {
                    st.commands
                        .iter()
                        .all(|c| self.outstanding.get(c).map(|o| o.acked).unwrap_or(true))
                })
                .unwrap_or(false);
            if all_acked {
                if let Some(ev) = self.confirm_intent(intent_id, now) {
                    events.push(ev);
                }
            }
        }

        // Backoff expirations → redispatch. A retry cycles to
        // whichever channel is best *now* and gets a fresh TTE for it.
        let mut ready: Vec<CommandId> = Vec::new();
        self.pending_retries.retain(|(at, id)| {
            if *at <= now {
                ready.push(*id);
                false
            } else {
                true
            }
        });
        for id in ready {
            let Some(o) = self.outstanding.get(&id) else {
                continue;
            };
            if o.acked {
                // Ack raced the backoff: nothing to resend.
                if let Some(o) = self.outstanding.get_mut(&id) {
                    o.awaiting_backoff = false;
                }
                continue;
            }
            let (dest, body, intent_id, attempt) = {
                let o = self.outstanding.get(&id).expect("listed");
                (o.cmd.dest, o.cmd.body.clone(), o.intent_id, o.attempt)
            };
            let kind = body.kind();
            let tte = if self.inband.is_reachable(dest, now) {
                now + self.config.inband_tte_margin
            } else if self.config.lora_enabled
                && self.lora.is_covered(dest)
                && body.size_bytes() <= self.lora.max_payload
            {
                now + self.config.lora_tte_margin
            } else {
                now + self.config.satcom_tte_margin
            };
            let cmd = Command {
                id,
                dest,
                body,
                tte,
                submitted: now,
            };
            let channel = self.dispatch(cmd.clone(), now);
            let timeout = self.timeout_for(kind, channel);
            let o = self.outstanding.get_mut(&id).expect("listed");
            o.cmd = cmd;
            o.channel = channel;
            o.attempt = attempt + 1;
            o.timeout_at = tte + timeout;
            o.awaiting_backoff = false;
            if matches!(channel, Channel::Satcom(_)) {
                if let Some(st) = self.intents.get_mut(&intent_id) {
                    st.used_satcom = true;
                }
            }
            events.push(CdpiEvent::Retried {
                id,
                attempt: attempt + 1,
                channel,
            });
        }

        // Timeouts → expire at the attempt cap, otherwise schedule a
        // retry after exponential backoff with deterministic jitter.
        let timed_out: Vec<CommandId> = self
            .outstanding
            .iter()
            .filter(|(_, o)| !o.acked && !o.awaiting_backoff && now >= o.timeout_at)
            .map(|(id, _)| *id)
            .collect();
        for id in timed_out {
            let o = self.outstanding.get(&id).expect("listed");
            if o.attempt >= self.config.max_attempts {
                let intent_id = o.intent_id;
                self.outstanding.remove(&id);
                events.push(CdpiEvent::Expired { id, intent_id });
                continue;
            }
            let attempt = o.attempt;
            let base_ms = self.config.retry_backoff_base.as_ms();
            let cap_ms = self.config.retry_backoff_cap.as_ms();
            let exp_ms = base_ms
                .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(16))
                .min(cap_ms);
            let jitter_ms = deterministic_jitter_ms(id, attempt, exp_ms / 4 + 1);
            let backoff = SimDuration(exp_ms + jitter_ms);
            let o = self.outstanding.get_mut(&id).expect("listed");
            o.awaiting_backoff = true;
            self.pending_retries.push((now + backoff, id));
        }

        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssdn_link::TransceiverId;

    fn frontend() -> CdpiFrontend {
        CdpiFrontend::new(CdpiConfig::default(), &RngStreams::new(11))
    }

    fn establish_body(intent: u64, a: u32, b: u32) -> CommandBody {
        CommandBody::EstablishLink {
            intent_id: intent,
            local: TransceiverId::new(PlatformId(a), 0),
            peer: TransceiverId::new(PlatformId(b), 0),
        }
    }

    fn run(f: &mut CdpiFrontend, from: SimTime, to: SimTime) -> Vec<CdpiEvent> {
        let mut events = Vec::new();
        let mut t = from;
        while t < to {
            t += SimDuration::from_secs(1);
            events.extend(f.poll(t));
        }
        events
    }

    #[test]
    fn inband_tte_is_three_seconds() {
        let mut f = frontend();
        f.inband.set_reachable(PlatformId(1), 2, SimTime::ZERO);
        let (_, tte) = f.submit_intent(
            vec![(PlatformId(1), establish_body(0, 1, 2))],
            SimTime::ZERO,
        );
        assert_eq!(tte, SimTime::from_secs(3));
    }

    #[test]
    fn satcom_tte_is_186_seconds() {
        let mut f = frontend();
        let (_, tte) = f.submit_intent(
            vec![(PlatformId(1), establish_body(0, 1, 2))],
            SimTime::ZERO,
        );
        assert_eq!(tte, SimTime::from_secs(186));
    }

    #[test]
    fn mixed_intent_takes_longest_margin() {
        // One recipient in-band, one satcom-only → satcom TTE for both.
        let mut f = frontend();
        f.inband.set_reachable(PlatformId(1), 2, SimTime::ZERO);
        let (_, tte) = f.submit_intent(
            vec![
                (PlatformId(1), establish_body(0, 1, 2)),
                (PlatformId(2), establish_body(0, 2, 1)),
            ],
            SimTime::ZERO,
        );
        assert_eq!(tte, SimTime::from_secs(186));
    }

    #[test]
    fn inband_route_confirms_fast() {
        let mut f = frontend();
        f.inband.loss_prob = 0.0;
        f.inband.set_reachable(PlatformId(1), 2, SimTime::ZERO);
        let (intent, _) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 8,
                },
            )],
            SimTime::ZERO,
        );
        let events = run(&mut f, SimTime::ZERO, SimTime::from_secs(5));
        let confirmed = events.iter().find_map(|e| match e {
            CdpiEvent::IntentConfirmed {
                intent_id, elapsed, ..
            } if *intent_id == intent => Some(*elapsed),
            _ => None,
        });
        let elapsed = confirmed.expect("confirmed quickly");
        assert!(
            elapsed.as_secs_f64() < 3.0,
            "sub-3s route confirm: {elapsed}"
        );
        assert_eq!(f.records().len(), 1);
        assert!(!f.records()[0].used_satcom);
    }

    #[test]
    fn satcom_link_command_delivers_and_acks() {
        let mut f = frontend();
        let (intent, _) = f.submit_intent(
            vec![(PlatformId(1), establish_body(0, 1, 2))],
            SimTime::ZERO,
        );
        let events = run(&mut f, SimTime::ZERO, SimTime::from_mins(20));
        assert!(
            events.iter().any(|e| matches!(
                e,
                CdpiEvent::DeliveredToNode {
                    channel: Channel::Satcom(_),
                    ..
                }
            )),
            "delivered via satcom"
        );
        let conf = events.iter().find_map(|e| match e {
            CdpiEvent::IntentConfirmed {
                intent_id, elapsed, ..
            } if *intent_id == intent => Some(*elapsed),
            _ => None,
        });
        let elapsed = conf.expect("eventually confirmed: {events:?}");
        assert!(
            elapsed.as_secs_f64() > 20.0,
            "satcom confirmation takes dozens of seconds at minimum: {elapsed}"
        );
        assert!(f.records()[0].used_satcom);
    }

    #[test]
    fn side_channel_confirms_before_satcom_ack() {
        let mut f = frontend();
        let (intent, _) = f.submit_intent(
            vec![(PlatformId(1), establish_body(0, 1, 2))],
            SimTime::ZERO,
        );
        // Run until the command is delivered over satcom.
        let mut delivered_at = None;
        let mut t = SimTime::ZERO;
        while delivered_at.is_none() && t < SimTime::from_mins(20) {
            t += SimDuration::from_secs(1);
            for e in f.poll(t) {
                if let CdpiEvent::DeliveredToNode { at, .. } = e {
                    delivered_at = Some(at);
                }
            }
        }
        let delivered_at = delivered_at.expect("delivered");
        // The balloon enacts and connects in-band shortly after TTE;
        // the side channel confirms the intent without waiting for the
        // satcom ack round trip.
        let connect_at = delivered_at + SimDuration::from_secs(30);
        let events = f.node_connected_inband(PlatformId(1), 3, connect_at);
        assert!(
            events.iter().any(|e| matches!(
                e,
                CdpiEvent::IntentConfirmed { intent_id, .. } if *intent_id == intent
            )),
            "side channel inferred success: {events:?}"
        );
    }

    #[test]
    fn route_to_unreachable_node_retries_then_expires() {
        let mut f = frontend();
        // Route update but node never reachable in-band; satcom drops
        // it silently; retries exhaust.
        let (intent, _) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 8,
                },
            )],
            SimTime::ZERO,
        );
        let events = run(&mut f, SimTime::ZERO, SimTime::from_mins(30));
        let retries = events
            .iter()
            .filter(|e| matches!(e, CdpiEvent::Retried { .. }))
            .count();
        assert_eq!(retries as u32, CdpiConfig::default().max_attempts - 1);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, CdpiEvent::Expired { intent_id, .. } if *intent_id == intent)),
            "expired after retries"
        );
        assert!(f.records().is_empty(), "never confirmed");
    }

    #[test]
    fn retry_upgrades_to_inband_when_it_appears() {
        let mut f = frontend();
        f.inband.loss_prob = 0.0;
        let (intent, _) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 8,
                },
            )],
            SimTime::ZERO,
        );
        // Node comes up in-band after the first timeout (~13 s).
        let mut events = Vec::new();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_mins(5) {
            t += SimDuration::from_secs(1);
            if t == SimTime::from_secs(20) {
                events.extend(f.node_connected_inband(PlatformId(1), 2, t));
            }
            if t > SimTime::from_secs(20) {
                // keep heartbeats fresh
                f.inband.set_reachable(PlatformId(1), 2, t);
            }
            events.extend(f.poll(t));
        }
        assert!(
            events.iter().any(|e| matches!(
                e,
                CdpiEvent::Retried {
                    channel: Channel::InBand,
                    ..
                }
            )),
            "retry switched to in-band: {events:?}"
        );
        assert!(events.iter().any(
            |e| matches!(e, CdpiEvent::IntentConfirmed { intent_id, .. } if *intent_id == intent)
        ));
    }

    /// Channel cycling carries a *fresh* TTE — and the original TTE is
    /// never upgraded once set. A route submitted while the node is
    /// satcom-only gets the satcom TTE; the node appearing in-band
    /// moments later changes nothing for the in-flight command (the
    /// §4.2 pathology), and only the timeout-driven retry re-evaluates
    /// the channels and stamps a new TTE.
    #[test]
    fn retry_cycles_channel_with_fresh_tte_and_never_upgrades() {
        let mut f = frontend();
        f.inband.loss_prob = 0.0;
        let (_, tte0) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 8,
                },
            )],
            SimTime::ZERO,
        );
        assert_eq!(
            tte0,
            SimTime::from_secs(186),
            "satcom TTE: node not in-band at submit"
        );
        // In-band appears 5 s in — far before the first timeout.
        f.node_connected_inband(PlatformId(1), 2, SimTime::from_secs(5));
        let mut delivered = None;
        let mut retried_channels = Vec::new();
        let mut t = SimTime::from_secs(5);
        while delivered.is_none() && t < SimTime::from_mins(10) {
            t += SimDuration::from_secs(1);
            f.inband.set_reachable(PlatformId(1), 2, t);
            for e in f.poll(t) {
                match e {
                    CdpiEvent::DeliveredToNode { cmd, at, channel } => {
                        delivered = Some((cmd, at, channel));
                    }
                    CdpiEvent::Retried { channel, .. } => retried_channels.push(channel),
                    _ => {}
                }
            }
        }
        let (cmd, at, channel) = delivered.expect("retry delivered in-band");
        assert!(
            matches!(channel, Channel::InBand),
            "cycled to next-priority channel"
        );
        assert!(
            matches!(retried_channels.first(), Some(Channel::InBand)),
            "retry event reports the new channel: {retried_channels:?}"
        );
        // Never upgraded: nothing arrived before the satcom-stamped
        // timeout (tte 186 s + route timeout) even though in-band was
        // available from t=5 s.
        assert!(at > SimTime::from_secs(196), "no early delivery: {at}");
        // Fresh TTE: re-stamped at redispatch from the in-band margin.
        assert!(cmd.tte > tte0, "fresh TTE on retry: {} > {tte0}", cmd.tte);
        assert!(
            cmd.tte <= at + SimDuration::from_secs(3),
            "in-band TTE margin: {}",
            cmd.tte
        );
    }

    /// The first retry waits out the base backoff after the timeout;
    /// it does not redispatch on the timeout tick itself.
    #[test]
    fn retry_waits_for_backoff_before_redispatch() {
        let mut f = frontend();
        let (_, _) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 8,
                },
            )],
            SimTime::ZERO,
        );
        // Satcom drops route commands; the first timeout fires at
        // tte (186 s) + route timeout (10 s) = 196 s.
        let mut first_retry = None;
        let mut t = SimTime::ZERO;
        while first_retry.is_none() && t < SimTime::from_mins(10) {
            t += SimDuration::from_secs(1);
            for e in f.poll(t) {
                if matches!(e, CdpiEvent::Retried { .. }) {
                    first_retry = Some(t);
                }
            }
        }
        let at = first_retry.expect("retried");
        let base = CdpiConfig::default().retry_backoff_base;
        assert!(
            at >= SimTime::from_secs(196) + base,
            "backoff respected: first retry at {at}, timeout at 196 s + base {base}"
        );
        assert!(
            at <= SimTime::from_secs(196) + base + SimDuration::from_secs(3),
            "backoff bounded by base + jitter: {at}"
        );
    }

    /// Receiver-side idempotency: a duplicated delivery re-acks but
    /// executes exactly once.
    #[test]
    fn duplicated_deliveries_execute_once() {
        let mut f = frontend();
        f.inband.loss_prob = 0.0;
        f.inband.set_reachable(PlatformId(1), 1, SimTime::ZERO);
        f.chaos.duplicate_prob = 1.0;
        let (intent, _) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 4,
                },
            )],
            SimTime::ZERO,
        );
        let events = run(&mut f, SimTime::ZERO, SimTime::from_secs(10));
        let delivered = events
            .iter()
            .filter(|e| matches!(e, CdpiEvent::DeliveredToNode { .. }))
            .count();
        assert_eq!(delivered, 1, "the duplicate must not re-execute");
        assert!(f.chaos_duplicated >= 1, "duplication happened");
        assert!(f.dedup_suppressed >= 1, "ledger suppressed the replay");
        assert!(events.iter().any(
            |e| matches!(e, CdpiEvent::IntentConfirmed { intent_id, .. } if *intent_id == intent)
        ));
    }

    /// Corrupted deliveries are discarded before execution; the
    /// frontend discovers the loss by timeout and eventually expires
    /// the command.
    #[test]
    fn corrupted_deliveries_time_out_and_expire() {
        let mut f = frontend();
        f.inband.loss_prob = 0.0;
        f.inband.set_reachable(PlatformId(1), 1, SimTime::ZERO);
        f.chaos.corrupt_prob = 1.0;
        let (_, _) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 4,
                },
            )],
            SimTime::ZERO,
        );
        let mut events = Vec::new();
        let mut t = SimTime::ZERO;
        while t < SimTime::from_mins(5) {
            t += SimDuration::from_secs(1);
            f.inband.set_reachable(PlatformId(1), 1, t);
            events.extend(f.poll(t));
        }
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, CdpiEvent::DeliveredToNode { .. })),
            "corrupted commands never execute"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, CdpiEvent::Expired { .. })),
            "attempts exhausted: {events:?}"
        );
        assert!(
            f.chaos_corrupted >= u64::from(CdpiConfig::default().max_attempts),
            "every attempt was corrupted: {}",
            f.chaos_corrupted
        );
    }

    /// The backoff jitter is a pure function of (command, attempt):
    /// identical across runs, varied across commands.
    #[test]
    fn retry_jitter_is_deterministic_and_bounded() {
        let a = deterministic_jitter_ms(CommandId(7), 2, 1250);
        assert_eq!(a, deterministic_jitter_ms(CommandId(7), 2, 1250));
        assert!(a < 1250);
        let others: Vec<u64> = (8..16)
            .map(|i| deterministic_jitter_ms(CommandId(i), 2, 1250))
            .collect();
        assert!(
            others.iter().any(|o| *o != a),
            "jitter desynchronizes commands"
        );
        assert_eq!(deterministic_jitter_ms(CommandId(7), 2, 0), 0);
    }

    #[test]
    fn enactment_records_capture_kind_and_elapsed() {
        let mut f = frontend();
        f.inband.loss_prob = 0.0;
        f.inband.set_reachable(PlatformId(1), 1, SimTime::ZERO);
        f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::SetRoutes {
                    version: 1,
                    entries: 2,
                },
            )],
            SimTime::ZERO,
        );
        run(&mut f, SimTime::ZERO, SimTime::from_secs(10));
        let r = f.records()[0];
        assert_eq!(r.kind, IntentKind::Route);
        assert!(r.elapsed_s() > 0.0 && r.elapsed_s() < 5.0);
    }
}
