//! Hybrid control plane: satcom bootstrap channels, the in-band
//! mesh channel, and the CDPI frontend that composes them.
//!
//! §4 of the paper: the TS-SDN drove balloons through a hierarchy of
//! control planes — two commercial satcom networks ("highly available
//! ... latencies up to minutes ... less than one 1 KiB message per
//! minute per balloon") and the in-band path over the mesh itself
//! ("up to 987 Mbps ... sub-second round-trip latency at the median").
//! The CDPI frontend tracked in-band reachability via heartbeats,
//! "directed messages along the lowest latency path", synchronized
//! enactment with a time-to-enact (TTE) derived from channel delays,
//! dropped satcom messages that could not arrive in time, and inferred
//! command success from the *appearance* of an in-band connection
//! (the side channel).
//!
//! Modules:
//! * [`message`] — command envelopes and bodies.
//! * [`satcom`]  — per-provider queued message service with the
//!   paper's measured latency distribution and rate limits.
//! * [`inband`]  — the mesh-routed gRPC-like channel with heartbeat
//!   reachability tracking.
//! * [`cdpi`]    — the frontend: channel selection, TTE computation,
//!   retries/timeouts, side-channel inference, and the enactment-time
//!   metrics behind Figure 9 (experiment E5).

pub mod cdpi;
pub mod inband;
pub mod lora;
pub mod message;
pub mod satcom;

pub use cdpi::{CdpiConfig, CdpiEvent, CdpiFrontend, CommandChaosParams, EnactmentRecord};
pub use inband::InbandChannel;
pub use lora::LoraChannel;
pub use message::{Channel, Command, CommandBody, CommandId, IntentKind};
pub use satcom::{SatcomConfig, SatcomGateway, SatcomOutcome};
