//! The in-band control channel: commands routed over the mesh itself.
//!
//! "The primary purpose of this control plane was to allow each
//! balloon router to establish a gRPC connection to a TS-SDN
//! controller endpoint ... and to maintain that connectivity despite
//! link failures" (§4.1). The frontend learns which balloons are
//! in-band reachable from heartbeats on those connections; delivery
//! latency is sub-second at the median with a small loss probability
//! standing in for reconvergence windows and connection resets.
//!
//! The mesh itself lives in `tssdn-manet`; this module receives
//! reachability facts (node → hop count) from the orchestrator rather
//! than routing packets itself, which keeps the channel testable in
//! isolation.

use crate::message::Command;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use tssdn_sim::{PlatformId, SimDuration, SimTime};

/// Outcome of an in-band send.
#[derive(Debug, Clone)]
pub enum InbandOutcome {
    /// Delivered at `at`.
    Delivered { cmd: Command, at: SimTime },
    /// Lost (route flapped mid-flight); the frontend must time out
    /// and retry.
    Lost { cmd: Command },
}

/// The in-band channel state.
pub struct InbandChannel {
    /// Current hop count to each reachable node.
    reachable: BTreeMap<PlatformId, u32>,
    /// Last heartbeat per node.
    last_heartbeat: BTreeMap<PlatformId, SimTime>,
    in_flight: Vec<(SimTime, Command)>,
    rng: ChaCha8Rng,
    /// Base one-way latency (connection + EC processing).
    pub base_latency: SimDuration,
    /// Extra latency per mesh hop.
    pub per_hop_latency: SimDuration,
    /// Probability a message is lost in flight.
    pub loss_prob: f64,
    /// Heartbeat staleness after which a node counts unreachable.
    pub heartbeat_timeout: SimDuration,
}

impl InbandChannel {
    /// A channel with Loon-like latency (sub-second median RTT).
    pub fn new(rng: ChaCha8Rng) -> Self {
        InbandChannel {
            reachable: BTreeMap::new(),
            last_heartbeat: BTreeMap::new(),
            in_flight: Vec::new(),
            rng,
            base_latency: SimDuration(120),
            per_hop_latency: SimDuration(25),
            loss_prob: 0.01,
            heartbeat_timeout: SimDuration::from_secs(10),
        }
    }

    /// The orchestrator reports that `node` currently has a MANET
    /// route of `hops` hops to the controller endpoint (also counts as
    /// a heartbeat).
    pub fn set_reachable(&mut self, node: PlatformId, hops: u32, now: SimTime) {
        self.reachable.insert(node, hops);
        self.last_heartbeat.insert(node, now);
    }

    /// The orchestrator reports that `node` lost its in-band path.
    pub fn set_unreachable(&mut self, node: PlatformId) {
        self.reachable.remove(&node);
    }

    /// Whether `node` is currently in-band reachable (fresh heartbeat
    /// and a live route).
    pub fn is_reachable(&self, node: PlatformId, now: SimTime) -> bool {
        self.reachable.contains_key(&node)
            && self
                .last_heartbeat
                .get(&node)
                .map(|t| now.since(*t) < self.heartbeat_timeout)
                .unwrap_or(false)
    }

    /// Expected one-way delivery latency to `node`, if reachable.
    pub fn estimate_latency(&self, node: PlatformId) -> Option<SimDuration> {
        let hops = *self.reachable.get(&node)?;
        Some(SimDuration(
            self.base_latency.as_ms() + self.per_hop_latency.as_ms() * hops as u64,
        ))
    }

    /// Send a command. Returns `false` (not queued) when the node is
    /// unreachable.
    pub fn submit(&mut self, cmd: Command, now: SimTime) -> bool {
        let Some(latency) = self.estimate_latency(cmd.dest) else {
            return false;
        };
        if !self.is_reachable(cmd.dest, now) {
            return false;
        }
        // Jitter ±30% around the estimate.
        let jitter = self.rng.gen_range(0.7..1.3);
        let arrives = now + latency.mul_f64(jitter);
        self.in_flight.push((arrives, cmd));
        true
    }

    /// Advance, appending outcomes.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<InbandOutcome>) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (at, cmd) = self.in_flight.swap_remove(i);
                if self.rng.gen_bool(self.loss_prob) {
                    out.push(InbandOutcome::Lost { cmd });
                } else {
                    out.push(InbandOutcome::Delivered { cmd, at });
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CommandBody, CommandId};
    use tssdn_sim::RngStreams;

    fn chan() -> InbandChannel {
        InbandChannel::new(RngStreams::new(3).stream("inband-test"))
    }

    fn route_cmd(dest: u32, now: SimTime) -> Command {
        Command {
            id: CommandId(1),
            dest: PlatformId(dest),
            body: CommandBody::SetRoutes {
                version: 1,
                entries: 4,
            },
            tte: now + SimDuration::from_secs(3),
            submitted: now,
        }
    }

    #[test]
    fn unreachable_node_rejects_submit() {
        let mut c = chan();
        assert!(!c.submit(route_cmd(5, SimTime::ZERO), SimTime::ZERO));
    }

    #[test]
    fn reachability_requires_fresh_heartbeat() {
        let mut c = chan();
        c.set_reachable(PlatformId(5), 3, SimTime::ZERO);
        assert!(c.is_reachable(PlatformId(5), SimTime::from_secs(5)));
        assert!(
            !c.is_reachable(PlatformId(5), SimTime::from_secs(15)),
            "stale heartbeat"
        );
        c.set_unreachable(PlatformId(5));
        assert!(!c.is_reachable(PlatformId(5), SimTime::from_secs(1)));
    }

    #[test]
    fn delivery_is_subsecond_at_few_hops() {
        let mut c = chan();
        c.loss_prob = 0.0;
        c.set_reachable(PlatformId(5), 4, SimTime::ZERO);
        assert!(c.submit(route_cmd(5, SimTime::ZERO), SimTime::ZERO));
        let mut out = Vec::new();
        c.poll(SimTime::from_secs(1), &mut out);
        let InbandOutcome::Delivered { at, .. } = &out[0] else {
            panic!("delivered: {out:?}");
        };
        assert!(at.as_ms() < 1000, "sub-second: {at}");
    }

    #[test]
    fn latency_grows_with_hops() {
        let mut c = chan();
        c.set_reachable(PlatformId(1), 1, SimTime::ZERO);
        c.set_reachable(PlatformId(2), 8, SimTime::ZERO);
        assert!(c.estimate_latency(PlatformId(2)) > c.estimate_latency(PlatformId(1)));
        assert_eq!(c.estimate_latency(PlatformId(9)), None);
    }

    #[test]
    fn losses_occur_at_configured_rate() {
        let mut c = chan();
        c.loss_prob = 0.3;
        c.set_reachable(PlatformId(5), 2, SimTime::ZERO);
        let mut lost = 0;
        let mut delivered = 0;
        let mut out = Vec::new();
        for i in 0..500u64 {
            let now = SimTime::from_secs(i);
            c.set_reachable(PlatformId(5), 2, now);
            c.submit(route_cmd(5, now), now);
            c.poll(now + SimDuration::from_secs(1), &mut out);
            for o in out.drain(..) {
                match o {
                    InbandOutcome::Lost { .. } => lost += 1,
                    InbandOutcome::Delivered { .. } => delivered += 1,
                }
            }
        }
        let rate = lost as f64 / (lost + delivered) as f64;
        assert!((rate - 0.3).abs() < 0.07, "loss rate ≈ 0.3, got {rate}");
    }
}
