//! The LoRaWAN bootstrap channel Loon prototyped but never deployed.
//!
//! §2.2: "We also prototyped a one-hop LoRaWAN device with 350 km of
//! simulated range, and were able to establish bootstrapping links.
//! While never deployed in production, a technology like this would
//! have enabled us to improve the speed and consistency with which
//! shorter bootstrap links could be formed. However, this approach did
//! not have the range to match our longer E band links, meaning that
//! satcom would still be required as a backstop."
//!
//! Modelled properties: one hop from a ground station, so coverage is
//! a per-balloon flag the orchestrator maintains from true geometry
//! (≤350 km of any GS site); seconds-scale latency; small frames (a
//! bitpacked link command fits; route tables do not); modest loss.

use crate::message::Command;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use tssdn_sim::{PlatformId, SimDuration, SimTime};

/// Outcome of a LoRa send.
#[derive(Debug, Clone)]
pub enum LoraOutcome {
    /// Delivered at `at`.
    Delivered { cmd: Command, at: SimTime },
    /// Lost in the air (no ack at this layer; the CDPI retries).
    Lost { cmd: Command },
}

/// The one-hop LoRaWAN broadcast channel.
pub struct LoraChannel {
    /// Nodes currently within range of some gateway site.
    covered: BTreeSet<PlatformId>,
    in_flight: Vec<(SimTime, Command)>,
    rng: ChaCha8Rng,
    /// One-way latency (duty-cycled class-A downlink scheduling).
    pub latency: SimDuration,
    /// Frame loss probability.
    pub loss_prob: f64,
    /// Maximum payload, bytes (LoRaWAN DR3-ish).
    pub max_payload: usize,
}

impl LoraChannel {
    /// A channel with the prototype's characteristics.
    pub fn new(rng: ChaCha8Rng) -> Self {
        LoraChannel {
            covered: BTreeSet::new(),
            in_flight: Vec::new(),
            rng,
            latency: SimDuration::from_secs(3),
            loss_prob: 0.05,
            max_payload: 242,
        }
    }

    /// The orchestrator reports whether `node` is within the 350 km
    /// one-hop footprint of any gateway.
    pub fn set_covered(&mut self, node: PlatformId, covered: bool) {
        if covered {
            self.covered.insert(node);
        } else {
            self.covered.remove(&node);
        }
    }

    /// Whether `node` can currently hear the channel.
    pub fn is_covered(&self, node: PlatformId) -> bool {
        self.covered.contains(&node)
    }

    /// Send a command. Returns `false` when out of coverage or the
    /// frame doesn't fit.
    pub fn submit(&mut self, cmd: Command, now: SimTime) -> bool {
        if !self.covered.contains(&cmd.dest) || cmd.body.size_bytes() > self.max_payload {
            return false;
        }
        let jitter = self.rng.gen_range(0.6..1.4);
        self.in_flight
            .push((now + self.latency.mul_f64(jitter), cmd));
        true
    }

    /// Advance, appending outcomes.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<LoraOutcome>) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                let (at, cmd) = self.in_flight.swap_remove(i);
                if self.rng.gen_bool(self.loss_prob) {
                    out.push(LoraOutcome::Lost { cmd });
                } else {
                    out.push(LoraOutcome::Delivered { cmd, at });
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{CommandBody, CommandId};
    use tssdn_link::TransceiverId;
    use tssdn_sim::RngStreams;

    fn chan() -> LoraChannel {
        LoraChannel::new(RngStreams::new(4).stream("lora-test"))
    }

    fn link_cmd(dest: u32) -> Command {
        Command {
            id: CommandId(1),
            dest: PlatformId(dest),
            body: CommandBody::EstablishLink {
                intent_id: 1,
                local: TransceiverId::new(PlatformId(dest), 0),
                peer: TransceiverId::new(PlatformId(9), 0),
            },
            tte: SimTime::from_secs(60),
            submitted: SimTime::ZERO,
        }
    }

    #[test]
    fn coverage_gates_submission() {
        let mut c = chan();
        assert!(!c.submit(link_cmd(5), SimTime::ZERO), "out of footprint");
        c.set_covered(PlatformId(5), true);
        assert!(c.submit(link_cmd(5), SimTime::ZERO));
        c.set_covered(PlatformId(5), false);
        assert!(!c.submit(link_cmd(5), SimTime::ZERO));
    }

    #[test]
    fn big_frames_rejected() {
        let mut c = chan();
        c.set_covered(PlatformId(5), true);
        let big = Command {
            body: CommandBody::SetRoutes {
                version: 1,
                entries: 40,
            },
            ..link_cmd(5)
        };
        assert!(
            !c.submit(big, SimTime::ZERO),
            "route tables don't fit LoRa frames"
        );
    }

    #[test]
    fn delivery_is_seconds_scale() {
        let mut c = chan();
        c.loss_prob = 0.0;
        c.set_covered(PlatformId(5), true);
        assert!(c.submit(link_cmd(5), SimTime::ZERO));
        let mut out = Vec::new();
        c.poll(SimTime::from_secs(10), &mut out);
        let LoraOutcome::Delivered { at, .. } = &out[0] else {
            panic!("delivered: {out:?}");
        };
        assert!(
            at.as_secs_f64() >= 1.5 && at.as_secs_f64() <= 5.0,
            "got {at}"
        );
    }

    #[test]
    fn losses_happen_at_configured_rate() {
        let mut c = chan();
        c.loss_prob = 0.4;
        c.set_covered(PlatformId(5), true);
        let (mut lost, mut ok) = (0, 0);
        let mut out = Vec::new();
        for i in 0..400u64 {
            c.submit(link_cmd(5), SimTime::from_secs(i * 10));
            c.poll(SimTime::from_secs(i * 10 + 9), &mut out);
            for o in out.drain(..) {
                match o {
                    LoraOutcome::Lost { .. } => lost += 1,
                    LoraOutcome::Delivered { .. } => ok += 1,
                }
            }
        }
        let rate = lost as f64 / (lost + ok) as f64;
        assert!((rate - 0.4).abs() < 0.08, "loss ≈ 0.4, got {rate}");
    }
}
