//! Link layer: transceivers, gimbals, and the point-to-point link
//! acquisition state machine.
//!
//! "To form a point-to-point link between two balloons or between a
//! balloon and a ground station, antennas on the pairing platforms had
//! to slew to aim at each other ... the formation of moving
//! point-to-point wireless links requires synchronizing the endpoints
//! to search for each other. In the Loon implementation, this process
//! could take dozens of seconds" (§2.2, §4.2).
//!
//! The state machine in [`acquisition`] reproduces that lifecycle:
//!
//! ```text
//! Pending(TTE) → Slewing → Searching ⇄ (retry) → Established → Ended
//!                              ↓ attempts exhausted        ↓
//!                            Failed                      Failed
//! ```
//!
//! Acquisition can fail stochastically (mechanical search) or
//! deterministically (the true RF margin is below what the
//! controller's model promised — the model/truth gap of §5). A small
//! probability of locking the tracker onto the antenna's first side
//! lobe reproduces the −14 dB bump in Figure 10. Established links
//! fail when the true margin sags below a *hold* threshold (weaker
//! than the establish threshold: links "establish at 130 km ...
//! maintain to 250+ km"), when line of sight is lost, or from a
//! random hardware hazard.
//!
//! [`lifetime`] keeps the ledger of link attempts and outcomes that
//! Figures 8 and 11 are computed from (the artifact's
//! `link_intents.csv` change log).

pub mod acquisition;
pub mod lifetime;
pub mod transceiver;

pub use acquisition::{AcqConfig, LinkPhase, LinkStateMachine, LinkTransition};
pub use lifetime::{EndReason, LinkKind, LinkLedger, LinkRecord, LinkStats};
pub use transceiver::{Transceiver, TransceiverId};
