//! Transceivers: the taskable radio+gimbal units on each platform.
//!
//! Each balloon carried three E-band transceivers "mounted on
//! mechanically pointable gimbals at the three corners of the
//! balloon's bus"; each ground site had two (§2.2: "100+ backhaul
//! transceivers (2 per ground site; 3 per balloon)"). Mounting
//! position gives each antenna a different occlusion wedge, which
//! "restricted antenna choice and added complexity when planning the
//! network".

use tssdn_geo::{AzEl, FieldOfRegard};
use tssdn_rf::AntennaPattern;
use tssdn_sim::PlatformId;

/// Identifies one transceiver: a platform plus an antenna index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransceiverId {
    /// Owning platform.
    pub platform: PlatformId,
    /// Antenna index on that platform (0..3 for balloons, 0..2 for
    /// ground stations).
    pub index: u8,
}

impl TransceiverId {
    pub fn new(platform: PlatformId, index: u8) -> Self {
        Self { platform, index }
    }
}

impl std::fmt::Display for TransceiverId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}t{}", self.platform, self.index)
    }
}

/// A gimballed radio unit.
#[derive(Debug, Clone)]
pub struct Transceiver {
    /// Identity.
    pub id: TransceiverId,
    /// Antenna gain pattern.
    pub pattern: AntennaPattern,
    /// Mechanical limits + static occlusions.
    pub field_of_regard: FieldOfRegard,
    /// Gimbal slew rate, degrees/second.
    pub slew_rate_deg_s: f64,
    /// Where the antenna currently points.
    pub pointing: AzEl,
}

impl Transceiver {
    /// A balloon corner antenna. `index` selects the bus-occlusion
    /// wedge: each antenna is blocked in a 140°-wide sector facing
    /// across the bus (centered 120° apart). Adjacent wedges overlap,
    /// so some azimuths are reachable by only one antenna — the
    /// "substantial, though not complete, overlap" of §2.2 — while the
    /// three antennas together still cover the full circle.
    pub fn balloon(platform: PlatformId, index: u8) -> Self {
        Self::balloon_of(platform, index, 3)
    }

    /// A corner antenna on a bus carrying `total` antennas spaced
    /// evenly in azimuth — used by the Appendix-A transceiver-count
    /// sweep (E8). The bus-occlusion wedge width shrinks as antennas
    /// are added (more corners, smaller shadows), keeping joint
    /// coverage complete for `total ≥ 2`.
    pub fn balloon_of(platform: PlatformId, index: u8, total: u8) -> Self {
        let total = total.max(2);
        let spacing = 360.0 / total as f64;
        let blocked_center = spacing * index as f64 + spacing / 2.0;
        // Wedge width: overlaps neighbours slightly (140° at 3).
        let width = (spacing * 7.0 / 6.0).min(170.0);
        Transceiver {
            id: TransceiverId::new(platform, index),
            pattern: AntennaPattern::e_band_balloon(),
            field_of_regard: FieldOfRegard::balloon_with_bus_occlusion(blocked_center, width),
            slew_rate_deg_s: 10.0,
            pointing: AzEl::new(spacing * index as f64, 0.0),
        }
    }

    /// A ground-station radome antenna with the site's horizon mask
    /// folded into its field of regard by the caller.
    pub fn ground_station(platform: PlatformId, index: u8, field_of_regard: FieldOfRegard) -> Self {
        Transceiver {
            id: TransceiverId::new(platform, index),
            pattern: AntennaPattern::e_band_ground_station(),
            field_of_regard,
            slew_rate_deg_s: 15.0,
            pointing: AzEl::new(180.0 * index as f64, 10.0),
        }
    }

    /// Whether this antenna can mechanically point at `dir`.
    pub fn can_point_at(&self, dir: &AzEl) -> bool {
        self.field_of_regard.contains(dir)
    }

    /// Time to slew from the current pointing to `dir`, seconds.
    pub fn slew_time_s(&self, dir: &AzEl) -> f64 {
        self.pointing.angular_distance_deg(dir) / self.slew_rate_deg_s
    }

    /// Number of transceivers a platform kind carries.
    pub fn count_for(kind: tssdn_sim::PlatformKind) -> u8 {
        match kind {
            tssdn_sim::PlatformKind::Balloon => 3,
            tssdn_sim::PlatformKind::GroundStation => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssdn_sim::PlatformKind;

    #[test]
    fn balloon_antennas_jointly_cover_full_azimuth() {
        let ts: Vec<Transceiver> = (0..3)
            .map(|i| Transceiver::balloon(PlatformId(0), i))
            .collect();
        for az in (0..360).step_by(5) {
            let dir = AzEl::new(az as f64, 0.0);
            let coverers = ts.iter().filter(|t| t.can_point_at(&dir)).count();
            assert!(coverers >= 1, "azimuth {az} uncovered");
        }
    }

    #[test]
    fn balloon_antennas_have_overlap_but_not_total() {
        let ts: Vec<Transceiver> = (0..3)
            .map(|i| Transceiver::balloon(PlatformId(0), i))
            .collect();
        let mut multi = 0;
        let mut single = 0;
        for az in (0..360).step_by(2) {
            let dir = AzEl::new(az as f64, 10.0);
            match ts.iter().filter(|t| t.can_point_at(&dir)).count() {
                0 => panic!("uncovered azimuth {az}"),
                1 => single += 1,
                _ => multi += 1,
            }
        }
        // "substantial – though not complete – overlap" (§2.2).
        assert!(multi > 0, "some overlap exists");
        assert!(single > 0, "coverage is not total overlap");
    }

    #[test]
    fn nadir_reachable_by_all_balloon_antennas() {
        for i in 0..3 {
            let t = Transceiver::balloon(PlatformId(1), i);
            assert!(t.can_point_at(&AzEl::new(0.0, -89.0)));
        }
    }

    #[test]
    fn slew_time_scales_with_angle() {
        let t = Transceiver::balloon(PlatformId(0), 0);
        // pointing starts at az 0, el 0; target az 90 → 90°/10°s = 9 s.
        let s = t.slew_time_s(&AzEl::new(90.0, 0.0));
        assert!((s - 9.0).abs() < 1e-9, "got {s}");
        assert_eq!(t.slew_time_s(&t.pointing.clone()), 0.0);
    }

    #[test]
    fn transceiver_counts_match_paper() {
        assert_eq!(Transceiver::count_for(PlatformKind::Balloon), 3);
        assert_eq!(Transceiver::count_for(PlatformKind::GroundStation), 2);
    }

    #[test]
    fn display_is_compact() {
        let id = TransceiverId::new(PlatformId(7), 2);
        assert_eq!(id.to_string(), "p7t2");
    }
}
