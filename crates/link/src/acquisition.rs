//! The link acquisition and maintenance state machine.
//!
//! One instance tracks one *link intent* end-to-end: waiting for the
//! synchronized time-to-enact, slewing both gimbals, the mutual
//! search, establishment (possibly on a side lobe), tracking, and
//! termination — either planned (controller withdrawal) or unexpected
//! (RF fade, lost line of sight, hardware).
//!
//! The orchestrator polls the machine every simulation tick with the
//! *true* physical link condition (from `tssdn-rf` evaluated against
//! weather truth — not the controller's model). The gap between the
//! two is exactly the paper's §5 story.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use tssdn_sim::{SimDuration, SimTime};

use crate::lifetime::EndReason;

/// Tunable acquisition dynamics.
#[derive(Debug, Clone, Copy)]
pub struct AcqConfig {
    /// Radio boot + minimum search overhead once slewing completes.
    pub search_min: SimDuration,
    /// Additional uniformly-distributed search time.
    pub search_jitter: SimDuration,
    /// Probability a single search attempt locks on, given the true
    /// RF margin is adequate. Models mechanical/tracking misses.
    pub search_success_prob: f64,
    /// Probability an otherwise-successful lock lands on the first
    /// side lobe (−14 dB) instead of the main lobe.
    pub sidelobe_lock_prob: f64,
    /// Search attempts before the machine gives up and reports
    /// failure. The TS-SDN "retried repeatedly" at intent level;
    /// this bounds one enactment.
    pub max_attempts: u32,
    /// Margin (dB) below which an *established* link drops. Negative:
    /// established links hold below the establish threshold
    /// ("establish at 130 km ... maintain to 250+ km").
    pub hold_margin_db: f64,
    /// Margin (dB) required for a search attempt to succeed.
    pub establish_margin_db: f64,
    /// Per-second probability of a spontaneous hardware drop while
    /// established (radio reboot, gimbal fault).
    pub hardware_hazard_per_s: f64,
    /// How long the true margin must stay below hold before the link
    /// actually drops (local tracking loops ride out short fades).
    pub fade_tolerance: SimDuration,
    /// Elevated drop hazard right after establishment while the
    /// tracking loops settle ("infant mortality"; §2.2's local
    /// tracking loops failed most often immediately after the mutual
    /// search locked). Per-second probability during
    /// [`Self::infant_period`].
    pub infant_hazard_per_s: f64,
    /// How long the infant hazard applies after establishment.
    pub infant_period: SimDuration,
}

impl AcqConfig {
    /// Defaults calibrated to the paper's reported behaviour: search
    /// takes "dozens of seconds" with total boot+search "up to 2m30s";
    /// first-attempt success ≈51% (B2G) / 40% (B2B) emerges from
    /// `search_success_prob` combined with model/truth margin misses;
    /// ~5% of locks land on a side lobe (Figure 10's bump).
    pub fn loon_default() -> Self {
        AcqConfig {
            search_min: SimDuration::from_secs(25),
            search_jitter: SimDuration::from_secs(50),
            search_success_prob: 0.55,
            sidelobe_lock_prob: 0.05,
            max_attempts: 3,
            hold_margin_db: -3.0,
            establish_margin_db: 0.0,
            hardware_hazard_per_s: 2.0e-6,
            fade_tolerance: SimDuration::from_secs(10),
            infant_hazard_per_s: 0.0,
            infant_period: SimDuration::from_secs(90),
        }
    }
}

/// Current phase of a link intent's enactment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkPhase {
    /// Command accepted; both ends wait for the synchronized TTE.
    Pending { enact_at: SimTime },
    /// Gimbals slewing toward the computed pointing vectors.
    Slewing { until: SimTime },
    /// Mutual search in progress.
    Searching { until: SimTime, attempt: u32 },
    /// Link up and carrying traffic.
    Established { since: SimTime, sidelobe: bool },
    /// Enactment failed (all attempts exhausted or RF infeasible).
    Failed { at: SimTime, reason: EndReason },
    /// Link was up and has terminated.
    Ended { at: SimTime, reason: EndReason },
}

/// A state transition worth reporting to the orchestrator/ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTransition {
    /// Slewing began (TTE reached).
    EnactStarted { at: SimTime },
    /// A search attempt started.
    AttemptStarted { at: SimTime, attempt: u32 },
    /// The link locked and is established.
    Established { at: SimTime, sidelobe: bool },
    /// A search attempt failed; another will follow.
    AttemptFailed { at: SimTime, attempt: u32 },
    /// The enactment failed permanently.
    Failed { at: SimTime, reason: EndReason },
    /// An established link terminated.
    Ended { at: SimTime, reason: EndReason },
}

/// The per-link state machine. See module docs for the lifecycle.
#[derive(Debug, Clone)]
pub struct LinkStateMachine {
    phase: LinkPhase,
    config: AcqConfig,
    /// Worst-endpoint slew duration for this enactment, ms.
    slew_ms: u64,
    /// Last poll instant (for hazard-rate integration).
    last_poll: Option<SimTime>,
    /// Time at which true margin first dipped below hold (None when
    /// margin healthy).
    fade_since: Option<SimTime>,
    /// Scheduled withdrawal instant, if the controller requested
    /// teardown (graceful, at the commanded TTE).
    withdraw_at: Option<SimTime>,
}

impl LinkStateMachine {
    /// Start an enactment: `enact_at` is the synchronized TTE,
    /// `slew_s` the worse of the two endpoints' slew times.
    pub fn new(enact_at: SimTime, slew_s: f64, config: AcqConfig) -> Self {
        LinkStateMachine {
            phase: LinkPhase::Pending { enact_at },
            config,
            slew_ms: (slew_s.max(0.0) * 1000.0) as u64,
            last_poll: None,
            fade_since: None,
            withdraw_at: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> LinkPhase {
        self.phase
    }

    /// True while the link is carrying traffic.
    pub fn is_established(&self) -> bool {
        matches!(self.phase, LinkPhase::Established { .. })
    }

    /// True when the machine has reached a terminal phase.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.phase,
            LinkPhase::Failed { .. } | LinkPhase::Ended { .. }
        )
    }

    /// Whether the lock is on a side lobe (only meaningful while
    /// established).
    pub fn on_sidelobe(&self) -> bool {
        matches!(self.phase, LinkPhase::Established { sidelobe: true, .. })
    }

    /// Request graceful teardown (controller-planned withdrawal). The
    /// next poll completes it.
    pub fn withdraw(&mut self) {
        self.withdraw_at = Some(SimTime::ZERO);
    }

    /// Schedule graceful teardown at `at` — teardown commands carry
    /// the intent's TTE so the old link stays up until the replacement
    /// topology's enactment moment (§4.2 "Time to Enact").
    pub fn withdraw_at(&mut self, at: SimTime) {
        // An earlier scheduled withdrawal wins.
        self.withdraw_at = Some(self.withdraw_at.map_or(at, |w| w.min(at)));
    }

    /// Advance the machine to `now`.
    ///
    /// * `true_margin_db` — the real link margin right now (weather
    ///   truth, actual geometry); `None` when line of sight is lost or
    ///   either payload is unpowered.
    /// * `rng` — the deterministic stream for this link's stochastic
    ///   outcomes.
    ///
    /// Returns any transition that occurred.
    pub fn poll(
        &mut self,
        now: SimTime,
        true_margin_db: Option<f64>,
        rng: &mut ChaCha8Rng,
    ) -> Option<LinkTransition> {
        if self.is_terminal() {
            return None;
        }

        // Scheduled withdrawal beats everything once its instant
        // arrives.
        if self.withdraw_at.map(|w| now >= w).unwrap_or(false) {
            let was_established = self.is_established();
            let reason = EndReason::Withdrawn;
            self.phase = if was_established {
                LinkPhase::Ended { at: now, reason }
            } else {
                LinkPhase::Failed { at: now, reason }
            };
            return Some(if was_established {
                LinkTransition::Ended { at: now, reason }
            } else {
                LinkTransition::Failed { at: now, reason }
            });
        }

        match self.phase {
            LinkPhase::Pending { enact_at } => {
                if now >= enact_at {
                    let until = now + SimDuration(self.slew_ms);
                    self.phase = LinkPhase::Slewing { until };
                    Some(LinkTransition::EnactStarted { at: now })
                } else {
                    None
                }
            }
            LinkPhase::Slewing { until } => {
                if now >= until {
                    let until = now + self.search_duration(rng);
                    self.phase = LinkPhase::Searching { until, attempt: 1 };
                    Some(LinkTransition::AttemptStarted {
                        at: now,
                        attempt: 1,
                    })
                } else {
                    None
                }
            }
            LinkPhase::Searching { until, attempt } => {
                if now < until {
                    return None;
                }
                let rf_ok = true_margin_db
                    .map(|m| m >= self.config.establish_margin_db)
                    .unwrap_or(false);
                let lock = rf_ok && rng.gen_bool(self.config.search_success_prob);
                if lock {
                    let sidelobe = rng.gen_bool(self.config.sidelobe_lock_prob);
                    self.phase = LinkPhase::Established {
                        since: now,
                        sidelobe,
                    };
                    self.fade_since = None;
                    Some(LinkTransition::Established { at: now, sidelobe })
                } else if attempt >= self.config.max_attempts {
                    let reason = if rf_ok {
                        EndReason::SearchExhausted
                    } else {
                        EndReason::RfInfeasible
                    };
                    self.phase = LinkPhase::Failed { at: now, reason };
                    Some(LinkTransition::Failed { at: now, reason })
                } else {
                    let next = attempt + 1;
                    let until = now + self.search_duration(rng);
                    self.phase = LinkPhase::Searching {
                        until,
                        attempt: next,
                    };
                    Some(LinkTransition::AttemptFailed { at: now, attempt })
                }
            }
            LinkPhase::Established { since, sidelobe } => {
                // Stochastic hazards scale with the time since the
                // last poll so the outcome is tick-rate independent.
                let dt_s = now.since(self.last_poll.unwrap_or(now)).as_secs_f64();
                self.last_poll = Some(now);
                let infant = now.since(since) < self.config.infant_period;
                let hazard = self.config.hardware_hazard_per_s
                    + if infant {
                        self.config.infant_hazard_per_s
                    } else {
                        0.0
                    };
                let p_drop = 1.0 - (-hazard * dt_s).exp();
                if p_drop > 0.0 && rng.gen_bool(p_drop.min(1.0)) {
                    // Infant drops are tracking losses; later drops are
                    // hardware faults.
                    let reason = if infant && self.config.infant_hazard_per_s > 0.0 {
                        EndReason::RfFade
                    } else {
                        EndReason::HardwareFault
                    };
                    self.phase = LinkPhase::Ended { at: now, reason };
                    return Some(LinkTransition::Ended { at: now, reason });
                }
                let healthy = match true_margin_db {
                    Some(m) => {
                        // Side-lobe locks sit ~14 dB down: their
                        // effective margin is reduced accordingly.
                        let eff = if sidelobe { m - 14.0 } else { m };
                        eff >= self.config.hold_margin_db
                    }
                    None => false,
                };
                if healthy {
                    self.fade_since = None;
                    None
                } else {
                    let start = *self.fade_since.get_or_insert(now);
                    if now.since(start) >= self.config.fade_tolerance {
                        let reason = if true_margin_db.is_none() {
                            EndReason::LineOfSightLost
                        } else {
                            EndReason::RfFade
                        };
                        self.phase = LinkPhase::Ended { at: now, reason };
                        Some(LinkTransition::Ended { at: now, reason })
                    } else {
                        None
                    }
                }
            }
            LinkPhase::Failed { .. } | LinkPhase::Ended { .. } => None,
        }
    }

    fn search_duration(&self, rng: &mut ChaCha8Rng) -> SimDuration {
        let jitter = rng.gen_range(0..=self.config.search_jitter.as_ms());
        SimDuration(self.config.search_min.as_ms() + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssdn_sim::RngStreams;

    fn rng() -> ChaCha8Rng {
        RngStreams::new(1).stream("acq-test")
    }

    fn drive(
        m: &mut LinkStateMachine,
        margin: impl Fn(SimTime) -> Option<f64>,
        until: SimTime,
        rng: &mut ChaCha8Rng,
    ) -> Vec<LinkTransition> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t <= until {
            if let Some(tr) = m.poll(t, margin(t), rng) {
                out.push(tr);
            }
            t += SimDuration::from_secs(1);
        }
        out
    }

    fn cfg_deterministic() -> AcqConfig {
        AcqConfig {
            search_success_prob: 1.0,
            sidelobe_lock_prob: 0.0,
            hardware_hazard_per_s: 0.0,
            search_jitter: SimDuration::ZERO,
            ..AcqConfig::loon_default()
        }
    }

    #[test]
    fn happy_path_establishes_after_tte_slew_search() {
        let mut m = LinkStateMachine::new(SimTime::from_secs(60), 9.0, cfg_deterministic());
        let mut r = rng();
        let trs = drive(&mut m, |_| Some(10.0), SimTime::from_secs(200), &mut r);
        assert!(
            matches!(trs[0], LinkTransition::EnactStarted { at } if at == SimTime::from_secs(60))
        );
        assert!(matches!(trs[1], LinkTransition::AttemptStarted { .. }));
        assert!(matches!(
            trs[2],
            LinkTransition::Established {
                sidelobe: false,
                ..
            }
        ));
        assert!(m.is_established());
        // Established at TTE + slew(9s) + search_min(25s) = 94s.
        if let LinkTransition::Established { at, .. } = trs[2] {
            assert_eq!(at, SimTime::from_secs(94));
        }
    }

    #[test]
    fn nothing_happens_before_tte() {
        let mut m = LinkStateMachine::new(SimTime::from_secs(100), 0.0, cfg_deterministic());
        let mut r = rng();
        let trs = drive(&mut m, |_| Some(10.0), SimTime::from_secs(99), &mut r);
        assert!(trs.is_empty());
        assert!(matches!(m.phase(), LinkPhase::Pending { .. }));
    }

    #[test]
    fn rf_infeasible_fails_after_max_attempts() {
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg_deterministic());
        let mut r = rng();
        let trs = drive(&mut m, |_| Some(-10.0), SimTime::from_secs(600), &mut r);
        let fails = trs
            .iter()
            .filter(|t| matches!(t, LinkTransition::AttemptFailed { .. }))
            .count();
        assert_eq!(fails, 2, "attempts 1,2 fail then terminal on 3rd");
        assert!(matches!(
            trs.last(),
            Some(LinkTransition::Failed {
                reason: EndReason::RfInfeasible,
                ..
            })
        ));
    }

    #[test]
    fn lost_los_during_search_fails() {
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg_deterministic());
        let mut r = rng();
        let trs = drive(&mut m, |_| None, SimTime::from_secs(600), &mut r);
        assert!(matches!(
            trs.last(),
            Some(LinkTransition::Failed {
                reason: EndReason::RfInfeasible,
                ..
            })
        ));
    }

    #[test]
    fn stochastic_search_sometimes_needs_retries() {
        // With success prob 0.5, across many machines we should see
        // both first-attempt locks and retries.
        let cfg = AcqConfig {
            search_success_prob: 0.5,
            hardware_hazard_per_s: 0.0,
            ..AcqConfig::loon_default()
        };
        let mut first = 0;
        let mut retried = 0;
        let mut failed = 0;
        let streams = RngStreams::new(5);
        for i in 0..200 {
            let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg);
            let mut r = streams.indexed_stream("acq", i);
            let trs = drive(&mut m, |_| Some(10.0), SimTime::from_secs(700), &mut r);
            if m.is_established() {
                let attempts = trs
                    .iter()
                    .filter(|t| {
                        matches!(
                            t,
                            LinkTransition::AttemptStarted { .. }
                                | LinkTransition::AttemptFailed { .. }
                        )
                    })
                    .count();
                if attempts <= 1 {
                    first += 1;
                } else {
                    retried += 1;
                }
            } else {
                failed += 1;
            }
        }
        assert!(first > 50, "many first-attempt locks: {first}");
        assert!(retried > 20, "some retries: {retried}");
        assert!(failed > 5, "some enactments never lock: {failed}");
    }

    #[test]
    fn fade_tolerance_rides_out_short_dips() {
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg_deterministic());
        let mut r = rng();
        // Establish, then margin dips for 5 s (tolerance is 10 s).
        let margin = |t: SimTime| {
            let s = t.as_ms() / 1000;
            if (100..105).contains(&s) {
                Some(-10.0)
            } else {
                Some(10.0)
            }
        };
        let trs = drive(&mut m, margin, SimTime::from_secs(300), &mut r);
        assert!(m.is_established(), "short fade ridden out: {trs:?}");
    }

    #[test]
    fn sustained_fade_drops_link() {
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg_deterministic());
        let mut r = rng();
        let margin = |t: SimTime| {
            if t >= SimTime::from_secs(100) {
                Some(-10.0)
            } else {
                Some(10.0)
            }
        };
        let trs = drive(&mut m, margin, SimTime::from_secs(300), &mut r);
        assert!(matches!(
            trs.last(),
            Some(LinkTransition::Ended {
                reason: EndReason::RfFade,
                ..
            })
        ));
        // Drop happens ~fade_tolerance after the fade began.
        if let Some(LinkTransition::Ended { at, .. }) = trs.last() {
            assert!(*at >= SimTime::from_secs(110) && *at <= SimTime::from_secs(112));
        }
    }

    #[test]
    fn hold_margin_is_laxer_than_establish() {
        // Margin of -1 dB: below establish (0) but above hold (−3).
        let cfg = cfg_deterministic();
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg);
        let mut r = rng();
        // Start healthy so we establish, then sag to −1 dB.
        let margin = |t: SimTime| {
            if t < SimTime::from_secs(60) {
                Some(5.0)
            } else {
                Some(-1.0)
            }
        };
        drive(&mut m, margin, SimTime::from_secs(400), &mut r);
        assert!(m.is_established(), "link holds below establish margin");
    }

    #[test]
    fn withdrawal_of_established_link_is_planned_end() {
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg_deterministic());
        let mut r = rng();
        drive(&mut m, |_| Some(10.0), SimTime::from_secs(100), &mut r);
        assert!(m.is_established());
        m.withdraw();
        let tr = m.poll(SimTime::from_secs(101), Some(10.0), &mut r);
        assert!(matches!(
            tr,
            Some(LinkTransition::Ended {
                reason: EndReason::Withdrawn,
                ..
            })
        ));
    }

    #[test]
    fn withdrawal_before_establishment_cancels() {
        let mut m = LinkStateMachine::new(SimTime::from_secs(1000), 0.0, cfg_deterministic());
        let mut r = rng();
        m.withdraw();
        let tr = m.poll(SimTime::from_secs(1), Some(10.0), &mut r);
        assert!(matches!(
            tr,
            Some(LinkTransition::Failed {
                reason: EndReason::Withdrawn,
                ..
            })
        ));
    }

    #[test]
    fn sidelobe_lock_reduces_effective_hold_margin() {
        let cfg = AcqConfig {
            search_success_prob: 1.0,
            sidelobe_lock_prob: 1.0, // force side-lobe lock
            hardware_hazard_per_s: 0.0,
            search_jitter: SimDuration::ZERO,
            ..AcqConfig::loon_default()
        };
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg);
        let mut r = rng();
        // True margin +5 dB: main-lobe would hold easily, side-lobe
        // effective margin is 5−14 = −9 < hold(−3) → drops.
        let trs = drive(&mut m, |_| Some(5.0), SimTime::from_secs(300), &mut r);
        assert!(trs
            .iter()
            .any(|t| matches!(t, LinkTransition::Established { sidelobe: true, .. })));
        assert!(matches!(
            trs.last(),
            Some(LinkTransition::Ended {
                reason: EndReason::RfFade,
                ..
            })
        ));
    }

    #[test]
    fn poll_after_terminal_is_noop() {
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg_deterministic());
        let mut r = rng();
        m.withdraw();
        m.poll(SimTime::ZERO, None, &mut r);
        assert!(m.is_terminal());
        assert!(m.poll(SimTime::from_secs(1), Some(10.0), &mut r).is_none());
    }
}
