//! Link-intent ledger: the change log of every attempted link.
//!
//! This is the in-memory equivalent of the artifact's
//! `link_intents.csv` ("state transitions of each attempted link"),
//! and the data source for Figure 11 (link lifetimes, attempt-success
//! rates, unexpected-failure shares) and Figure 8's withdrawn-vs-
//! failed split.

use crate::transceiver::TransceiverId;
use tssdn_sim::{SimDuration, SimTime};

/// B2B vs B2G classification — the two populations Figure 11
/// contrasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Balloon to balloon.
    B2B,
    /// Balloon to ground station.
    B2G,
}

impl std::fmt::Display for LinkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkKind::B2B => write!(f, "B2B"),
            LinkKind::B2G => write!(f, "B2G"),
        }
    }
}

/// Why a link (or its enactment) terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndReason {
    /// Controller-planned teardown (anticipated degradation or
    /// re-optimization). Counted as *planned* in Figure 8/§5.
    Withdrawn,
    /// True RF margin fell and stayed below the hold threshold.
    RfFade,
    /// Geometric line of sight lost (motion, occlusion) or peer power
    /// loss.
    LineOfSightLost,
    /// Spontaneous radio/gimbal fault.
    HardwareFault,
    /// Mutual search never locked despite adequate RF.
    SearchExhausted,
    /// RF margin was never adequate during any search attempt (the
    /// controller's model was wrong about this link).
    RfInfeasible,
    /// The establish command never reached one or both endpoints
    /// (control-channel drops/expiry); the link was never attempted.
    CommandUndeliverable,
}

impl EndReason {
    /// Whether the termination was controller-planned. "Approximately
    /// half (47.4%) failed unexpectedly" (§5) — everything except
    /// `Withdrawn` is unexpected.
    pub fn is_planned(&self) -> bool {
        matches!(self, EndReason::Withdrawn)
    }
}

/// The ledger entry for one link intent.
#[derive(Debug, Clone)]
pub struct LinkRecord {
    /// Ledger-assigned id.
    pub intent_id: u64,
    /// One endpoint.
    pub a: TransceiverId,
    /// The other endpoint.
    pub b: TransceiverId,
    /// B2B or B2G.
    pub kind: LinkKind,
    /// When the intent was created (command issued).
    pub created: SimTime,
    /// When the link established, if it ever did.
    pub established: Option<SimTime>,
    /// When the intent reached a terminal state.
    pub ended: Option<SimTime>,
    /// Terminal reason.
    pub end_reason: Option<EndReason>,
    /// Search attempts consumed (1 = first-attempt success).
    pub attempts: u32,
    /// Whether the lock was on a side lobe.
    pub sidelobe: bool,
}

impl LinkRecord {
    /// Established duration, if the link was ever up and has ended.
    pub fn lifetime(&self) -> Option<SimDuration> {
        match (self.established, self.ended) {
            (Some(e), Some(x)) => Some(x - e),
            _ => None,
        }
    }
}

/// Aggregated statistics over a set of link records of one kind.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Number of intents.
    pub intents: usize,
    /// Number that ever established.
    pub established: usize,
    /// Number that established on the first search attempt.
    pub first_attempt: usize,
    /// Number that never established.
    pub never_established: usize,
    /// Of links that were up and ended: how many ended unplanned.
    pub unexpected_ends: usize,
    /// Of links that were up: how many have ended at all.
    pub ended_after_established: usize,
    /// Established-duration samples, seconds, of ended links.
    pub lifetimes_s: Vec<f64>,
}

impl LinkStats {
    /// Fraction of intents that established on the first attempt.
    pub fn first_attempt_rate(&self) -> f64 {
        if self.intents == 0 {
            return 0.0;
        }
        self.first_attempt as f64 / self.intents as f64
    }

    /// Fraction of intents that never established.
    pub fn never_rate(&self) -> f64 {
        if self.intents == 0 {
            return 0.0;
        }
        self.never_established as f64 / self.intents as f64
    }

    /// Fraction of completed links that ended unexpectedly.
    pub fn unexpected_end_rate(&self) -> f64 {
        if self.ended_after_established == 0 {
            return 0.0;
        }
        self.unexpected_ends as f64 / self.ended_after_established as f64
    }

    /// Median established lifetime, seconds.
    pub fn median_lifetime_s(&self) -> Option<f64> {
        percentile(&self.lifetimes_s, 50.0)
    }

    /// Fraction of ended links that lived shorter than `s` seconds.
    pub fn fraction_shorter_than(&self, s: f64) -> f64 {
        if self.lifetimes_s.is_empty() {
            return 0.0;
        }
        self.lifetimes_s.iter().filter(|&&x| x < s).count() as f64 / self.lifetimes_s.len() as f64
    }
}

/// Percentile (0–100) of an unsorted sample set, by linear
/// interpolation; `None` on an empty set.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// The ledger of all link intents in a run.
#[derive(Debug, Default)]
pub struct LinkLedger {
    records: Vec<LinkRecord>,
}

impl LinkLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new intent; returns its id.
    pub fn open(
        &mut self,
        a: TransceiverId,
        b: TransceiverId,
        kind: LinkKind,
        now: SimTime,
    ) -> u64 {
        let intent_id = self.records.len() as u64;
        self.records.push(LinkRecord {
            intent_id,
            a,
            b,
            kind,
            created: now,
            established: None,
            ended: None,
            end_reason: None,
            attempts: 0,
            sidelobe: false,
        });
        intent_id
    }

    /// Record a search attempt on an intent.
    pub fn record_attempt(&mut self, id: u64) {
        self.records[id as usize].attempts += 1;
    }

    /// Record establishment.
    pub fn record_established(&mut self, id: u64, now: SimTime, sidelobe: bool) {
        let r = &mut self.records[id as usize];
        r.established = Some(now);
        r.sidelobe = sidelobe;
    }

    /// Record terminal state.
    pub fn record_end(&mut self, id: u64, now: SimTime, reason: EndReason) {
        let r = &mut self.records[id as usize];
        r.ended = Some(now);
        r.end_reason = Some(reason);
    }

    /// All records.
    pub fn records(&self) -> &[LinkRecord] {
        &self.records
    }

    /// Record by id.
    pub fn get(&self, id: u64) -> &LinkRecord {
        &self.records[id as usize]
    }

    /// Aggregate statistics for one link kind (terminal records only
    /// contribute lifetime/end stats; open intents still count toward
    /// attempt stats).
    pub fn stats(&self, kind: LinkKind) -> LinkStats {
        let mut s = LinkStats::default();
        for r in self.records.iter().filter(|r| r.kind == kind) {
            s.intents += 1;
            if r.established.is_some() {
                s.established += 1;
                if r.attempts <= 1 {
                    s.first_attempt += 1;
                }
                if let Some(life) = r.lifetime() {
                    s.ended_after_established += 1;
                    s.lifetimes_s.push(life.as_secs_f64());
                    if let Some(reason) = r.end_reason {
                        if !reason.is_planned() {
                            s.unexpected_ends += 1;
                        }
                    }
                }
            } else if r.ended.is_some() {
                s.never_established += 1;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssdn_sim::PlatformId;

    fn tid(p: u32, i: u8) -> TransceiverId {
        TransceiverId::new(PlatformId(p), i)
    }

    fn populated() -> LinkLedger {
        let mut l = LinkLedger::new();
        // Intent 0: B2B, first-attempt, lives 100 s, withdrawn.
        let a = l.open(tid(0, 0), tid(1, 0), LinkKind::B2B, SimTime::ZERO);
        l.record_attempt(a);
        l.record_established(a, SimTime::from_secs(30), false);
        l.record_end(a, SimTime::from_secs(130), EndReason::Withdrawn);
        // Intent 1: B2B, 2 attempts, lives 50 s, fades.
        let b = l.open(tid(0, 1), tid(2, 0), LinkKind::B2B, SimTime::ZERO);
        l.record_attempt(b);
        l.record_attempt(b);
        l.record_established(b, SimTime::from_secs(60), false);
        l.record_end(b, SimTime::from_secs(110), EndReason::RfFade);
        // Intent 2: B2G, never establishes.
        let c = l.open(tid(0, 2), tid(9, 0), LinkKind::B2G, SimTime::ZERO);
        l.record_attempt(c);
        l.record_attempt(c);
        l.record_attempt(c);
        l.record_end(c, SimTime::from_secs(200), EndReason::RfInfeasible);
        // Intent 3: B2G, first attempt, lives 40 s, LOS lost.
        let d = l.open(tid(1, 1), tid(9, 1), LinkKind::B2G, SimTime::ZERO);
        l.record_attempt(d);
        l.record_established(d, SimTime::from_secs(50), true);
        l.record_end(d, SimTime::from_secs(90), EndReason::LineOfSightLost);
        l
    }

    #[test]
    fn b2b_stats() {
        let l = populated();
        let s = l.stats(LinkKind::B2B);
        assert_eq!(s.intents, 2);
        assert_eq!(s.established, 2);
        assert_eq!(s.first_attempt, 1);
        assert_eq!(s.never_established, 0);
        assert_eq!(s.ended_after_established, 2);
        assert_eq!(s.unexpected_ends, 1);
        assert!((s.first_attempt_rate() - 0.5).abs() < 1e-12);
        assert!((s.unexpected_end_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.median_lifetime_s(), Some(75.0));
    }

    #[test]
    fn b2g_stats() {
        let l = populated();
        let s = l.stats(LinkKind::B2G);
        assert_eq!(s.intents, 2);
        assert_eq!(s.never_established, 1);
        assert!((s.never_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.unexpected_ends, 1);
        assert_eq!(s.lifetimes_s, vec![40.0]);
        assert!((s.fraction_shorter_than(60.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.fraction_shorter_than(10.0), 0.0);
    }

    #[test]
    fn lifetime_none_until_ended() {
        let mut l = LinkLedger::new();
        let id = l.open(tid(0, 0), tid(1, 0), LinkKind::B2B, SimTime::ZERO);
        l.record_established(id, SimTime::from_secs(10), false);
        assert!(l.get(id).lifetime().is_none());
        l.record_end(id, SimTime::from_secs(25), EndReason::Withdrawn);
        assert_eq!(l.get(id).lifetime(), Some(SimDuration::from_secs(15)));
    }

    #[test]
    fn planned_classification() {
        assert!(EndReason::Withdrawn.is_planned());
        for r in [
            EndReason::RfFade,
            EndReason::LineOfSightLost,
            EndReason::HardwareFault,
            EndReason::SearchExhausted,
            EndReason::RfInfeasible,
            EndReason::CommandUndeliverable,
        ] {
            assert!(!r.is_planned(), "{r:?}");
        }
    }

    #[test]
    fn percentile_interpolates() {
        let xs = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 90.0), Some(7.0));
    }

    #[test]
    fn empty_stats_are_zero() {
        let l = LinkLedger::new();
        let s = l.stats(LinkKind::B2B);
        assert_eq!(s.first_attempt_rate(), 0.0);
        assert_eq!(s.unexpected_end_rate(), 0.0);
        assert_eq!(s.median_lifetime_s(), None);
    }
}
