//! Shared helpers for the runnable example binaries.
//!
//! Each example in this directory is a standalone binary exercising
//! the public API of the `tssdn-*` crates:
//!
//! * `quickstart` — the smallest end-to-end loop: build a world, run a
//!   morning, watch the mesh form.
//! * `kenya_service` — the paper's commercial scenario: a day of LTE
//!   backhaul service over Kenya with per-layer availability.
//! * `disaster_response` — an emergency deployment (the paper's
//!   Peru/Puerto Rico missions): bootstrap speed under pressure.
//! * `drain_maintenance` — Appendix C administrative drains driving a
//!   software-update campaign.
//! * `artifact_export` — writes the artifact-style CSV tables
//!   (Appendix E schemas) from a short run.

use tssdn_core::Orchestrator;
use tssdn_sim::{SimDuration, SimTime};

/// Advance `o` to `to`, printing a compact mesh status line every
/// simulated `every`.
pub fn run_with_status(o: &mut Orchestrator, to: SimTime, every: SimDuration) {
    while o.now() < to {
        let next = (o.now() + every).min(to);
        o.run_until(next);
        let links = o.intents.established().count();
        let intents = o.intents.all().count();
        println!(
            "[{}] links up: {links:>3}   intents so far: {intents:>4}",
            o.now()
        );
    }
}
