//! Artifact export: write the Appendix-E table schemas from a run.
//!
//! The Loon artifact (Zenodo 6629754) ships five CSV tables; this
//! example regenerates the four reproducible ones from a short
//! simulated morning and writes them under `artifact_out/`:
//! `backhaul.csv`, `link_intents.csv`, `link_reports.csv`,
//! `flight_regions.csv`.
//!
//! Run with: `cargo run --release -p tssdn-examples --bin artifact_export`

use tssdn_core::{Orchestrator, OrchestratorConfig};
use tssdn_sim::{PlatformId, SimDuration, SimTime};
use tssdn_telemetry::export;

fn main() -> std::io::Result<()> {
    println!("== artifact_export: regenerate the Appendix-E tables ==\n");

    let mut config = OrchestratorConfig::kenya(8, 6_629_754);
    config.fleet.spawn_radius_m = 220_000.0;
    let mut o = Orchestrator::new(config);

    let mut backhaul = export::backhaul_table();
    let mut reports = export::link_reports_table();
    let mut regions = export::flight_regions_table();

    // Sample the world every 10 minutes from 06:00 to 12:00.
    o.run_until(SimTime::from_hours(6));
    while o.now() < SimTime::from_hours(12) {
        o.run_until(o.now() + SimDuration::from_mins(10));
        let now = o.now();
        for b in 0..8u32 {
            let id = PlatformId(b);
            let eligible = o.fleet().payload_powered(id);
            let link_up = o
                .intents
                .established()
                .any(|i| i.link.a.platform == id || i.link.b.platform == id);
            let ctrl = o.cdpi.inband.is_reachable(id, now);
            let data = o.data_plane_status(id) == tssdn_core::orchestrator::DataPlaneStatus::Up;
            export::push_backhaul(&mut backhaul, now, id, "link", eligible, link_up);
            export::push_backhaul(&mut backhaul, now, id, "control", eligible, ctrl);
            export::push_backhaul(&mut backhaul, now, id, "data", eligible, data);
        }
        // Transceiver link reports: the current candidate graph.
        for l in o.evaluate_candidates(now).links {
            reports.push(vec![
                now.as_ms().to_string(),
                l.a.to_string(),
                l.b.to_string(),
                l.kind.to_string(),
                l.band.to_string(),
                l.bitrate_bps.to_string(),
                format!("{:.2}", l.margin_db),
                format!("{:?}", l.quality),
                format!("{:.0}", l.range_m),
            ]);
        }
        // Flight regions: platform positions.
        for (id, _) in o.fleet().platform_ids() {
            let p = o.fleet().position(id);
            regions.push(vec![
                now.as_ms().to_string(),
                id.to_string(),
                format!("{:.5}", p.lat_deg),
                format!("{:.5}", p.lon_deg),
                format!("{:.0}", p.alt_m),
            ]);
        }
    }

    // Link-intent change log from the ledger.
    let mut intents = export::link_intents_table();
    for r in o.ledger.records() {
        let base = |event: &str, t: SimTime, detail: String| {
            vec![
                r.intent_id.to_string(),
                r.a.to_string(),
                r.b.to_string(),
                r.kind.to_string(),
                event.to_string(),
                t.as_ms().to_string(),
                detail,
            ]
        };
        intents.push(base(
            "created",
            r.created,
            format!("attempts={}", r.attempts),
        ));
        if let Some(t) = r.established {
            intents.push(base("established", t, format!("sidelobe={}", r.sidelobe)));
        }
        if let (Some(t), Some(reason)) = (r.ended, r.end_reason) {
            intents.push(base("ended", t, format!("{reason:?}")));
        }
    }

    std::fs::create_dir_all("artifact_out")?;
    for (name, table) in [
        ("backhaul.csv", &backhaul),
        ("link_intents.csv", &intents),
        ("link_reports.csv", &reports),
        ("flight_regions.csv", &regions),
    ] {
        let path = format!("artifact_out/{name}");
        std::fs::write(&path, table.to_csv())?;
        println!("wrote {path}: {} rows", table.len());
    }
    println!("\nschemas match DESIGN.md §artifact; analysis written against the");
    println!("Loon Zenodo tables can be pointed at these files.");
    Ok(())
}
