//! "Why not?" — the operator console the paper wished for.
//!
//! §6: "This led operators to second guess the solver and frequently
//! ask 'why not...'. What was not clear was whether such proposed
//! solutions were possible (e.g. didn't have unseen geometric or
//! RF-based constraints) ... Adding such properties to visualization
//! tools was challenging but critical." Recommendation 5: tooling that
//! "empowers network operations to answer 'why not' questions, find
//! bugs, and build confidence in correct behavior."
//!
//! This example runs a morning, then interrogates the controller the
//! way an operator would: render the solver's goal state and the
//! expected sequence of intents (recommendation 3), score the solution
//! (recommendation 4), and explain for every balloon pair why no link
//! — or no *selected* link — exists between them (recommendation 5).
//!
//! Run with: `cargo run --release -p tssdn-examples --bin why_not`

use tssdn_core::{
    explain_absence, explain_pair, Orchestrator, OrchestratorConfig, PairAbsence, SelectionAbsence,
};
use tssdn_sim::{PlatformId, SimTime};

fn main() {
    println!("== why_not: interrogating the solver ==\n");

    let mut config = OrchestratorConfig::kenya(8, 31);
    config.fleet.spawn_radius_m = 260_000.0;
    let mut o = Orchestrator::new(config);
    o.run_until(SimTime::from_hours(10));

    // Recommendation 3 + 4: the near-term goal state, its intent
    // sequence, and the solution's value metric.
    let current: std::collections::BTreeSet<_> = o.intents.live().map(|i| i.key()).collect();
    let plan = o.last_plan.clone().expect("controller has solved by 10:00");
    println!("{}", plan.render_goal_state(&current, 8));

    // Recommendation 5: "why not?" across every balloon pair.
    let graph = o.evaluate_candidates(o.now());
    let solver = tssdn_core::Solver::default();
    println!("# pairwise \"why not\" (balloon–balloon):");
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for a in 0..8u32 {
        for b in (a + 1)..8u32 {
            let (pa, pb) = (PlatformId(a), PlatformId(b));
            // First: does a selected link already serve this pair?
            let selected = plan.all_links().any(|l| {
                (l.a.platform, l.b.platform) == (pa, pb) || (l.b.platform, l.a.platform) == (pa, pb)
            });
            if selected {
                *counts.entry("in plan").or_default() += 1;
                continue;
            }
            // Physical level.
            let why = explain_pair(&o.model, &o.config.evaluator, pa, pb, o.now());
            let label: &'static str = match &why {
                PairAbsence::HasCandidates { .. } => {
                    // Candidates exist; ask the solver level about the
                    // best one.
                    let key = graph
                        .links
                        .iter()
                        .filter(|l| {
                            (l.a.platform == pa && l.b.platform == pb)
                                || (l.a.platform == pb && l.b.platform == pa)
                        })
                        .max_by(|x, y| x.margin_db.partial_cmp(&y.margin_db).expect("finite"))
                        .map(|l| l.key());
                    match key
                        .map(|k| explain_absence(&solver, &graph, &plan, &o.drains, k, o.now()))
                    {
                        Some(SelectionAbsence::TransceiverBusy { .. }) => "radios busy",
                        Some(SelectionAbsence::Interference { .. }) => "beam interference",
                        Some(SelectionAbsence::NoUtility) => "no demand utility",
                        Some(SelectionAbsence::Drained(_)) => "drained",
                        Some(SelectionAbsence::FeedbackPenalized { .. }) => "feedback-penalized",
                        Some(SelectionAbsence::InPlan) => "in plan",
                        _ => "not a candidate",
                    }
                }
                PairAbsence::OutOfRange { .. } => "out of range",
                PairAbsence::NoLineOfSight => "earth blocks LOS",
                PairAbsence::Unpowered(_) => "unpowered",
                PairAbsence::NoUsableAntenna(_) => "antenna occluded",
                PairAbsence::RfInfeasible { .. } => "RF infeasible",
                PairAbsence::NoPosition(_) => "no position",
                PairAbsence::GroundToGround => "gs-gs",
            };
            *counts.entry(label).or_default() += 1;
            // Print a few concrete explanations.
            if matches!(
                why,
                PairAbsence::OutOfRange { .. } | PairAbsence::NoLineOfSight
            ) && counts[label] <= 2
            {
                println!("  p{a} – p{b}: {why:?}");
            }
        }
    }
    println!();
    println!("# answer distribution over all 28 balloon pairs:");
    for (label, n) in &counts {
        println!("  {label:<18} {n}");
    }
    println!();
    println!("every absent link has a concrete, queryable reason — no more");
    println!("second-guessing the solver (§6 recommendation 5).");
}
