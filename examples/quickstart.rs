//! Quickstart: the smallest end-to-end TS-SDN loop.
//!
//! Builds a Kenya-like world (8 balloons, 3 ground stations, 1 edge
//! compute pod), runs from midnight through mid-morning, and shows the
//! daily bootstrap the paper describes: balloons wake after dawn,
//! satcom carries the first link commands, the mesh forms, the in-band
//! control plane comes up, and data-plane routes land.
//!
//! Run with: `cargo run --release -p tssdn-examples --bin quickstart`

use tssdn_core::{Orchestrator, OrchestratorConfig};
use tssdn_sim::{PlatformId, SimDuration, SimTime};
use tssdn_telemetry::Layer;

fn main() {
    println!("== tssdn quickstart: one morning over Kenya ==\n");

    // A small deterministic world. Every run with the same seed is
    // bit-identical.
    let config = OrchestratorConfig::kenya(8, 7);
    let mut o = Orchestrator::new(config);

    println!(
        "world: {} balloons + {} ground stations + {} EC pod(s)",
        o.num_balloons(),
        o.fleet().ground_stations.len(),
        o.ec_ids().len()
    );

    // 03:00 — night. Balloons are station-seeking but the comms
    // payload is unpowered; no mesh can exist.
    o.run_until(SimTime::from_hours(3));
    println!(
        "\n[03:00] payload power: {}/{} balloons; links up: {}",
        (0..8)
            .filter(|i| o.fleet().payload_powered(PlatformId(*i)))
            .count(),
        o.num_balloons(),
        o.intents.established().count()
    );

    // Run through dawn and the morning bootstrap, reporting hourly.
    tssdn_examples::run_with_status(&mut o, SimTime::from_hours(11), SimDuration::from_hours(1));

    // Where did we end up?
    println!("\n[11:00] status:");
    println!("  link intents issued:  {}", o.intents.all().count());
    println!(
        "  links currently up:   {}",
        o.intents.established().count()
    );
    let in_band = (0..8)
        .filter(|i| o.cdpi.inband.is_reachable(PlatformId(*i), o.now()))
        .count();
    println!("  balloons on in-band control: {in_band}/8");
    for layer in [Layer::Link, Layer::ControlPlane, Layer::DataPlane] {
        if let Some(a) = o.availability.overall(layer) {
            println!("  {layer} availability so far: {:.1}%", 100.0 * a);
        }
    }
    let confirmed = o.cdpi.records().len();
    println!("  intents confirmed through the hybrid control plane: {confirmed}");
    println!("\nthe mesh bootstrapped itself from satcom, exactly like every Loon morning.");
}
