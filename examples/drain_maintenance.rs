//! Administrative drains: a software-update campaign.
//!
//! Appendix C: "Drain requests ... allowed for the temporary exclusion
//! of network nodes from the data plane by rerouting production
//! traffic around the drained node ... to implement an 'Opportunistic'
//! drain, the SDN controller would passively wait for a node to
//! naturally lose all traffic, then latch that state."
//!
//! This example drains one relay balloon opportunistically mid-day,
//! shows traffic leaving it while service continues, then cancels the
//! drain after the "update".
//!
//! Run with: `cargo run --release -p tssdn-examples --bin drain_maintenance`

use tssdn_core::{Orchestrator, OrchestratorConfig};
use tssdn_dataplane::DrainMode;
use tssdn_sim::{PlatformId, SimDuration, SimTime};
use tssdn_telemetry::Layer;

fn main() {
    println!("== drain_maintenance: opportunistic drain for a software update ==\n");

    let mut config = OrchestratorConfig::kenya(10, 99);
    config.fleet.spawn_radius_m = 220_000.0;
    let mut o = Orchestrator::new(config);

    // Let the mesh form through the morning.
    o.run_until(SimTime::from_hours(10));
    // Pick the busiest relay: the balloon with the most transit routes.
    let victim = (0..10u32)
        .map(PlatformId)
        .max_by_key(|v| {
            (0..10u32)
                .filter(|b| PlatformId(*b) != *v)
                .filter_map(|b| o.active_path(PlatformId(b)))
                .filter(|p| p.contains(v))
                .count()
        })
        .expect("balloons exist");
    let live_transit = (0..10u32)
        .filter(|b| PlatformId(*b) != victim)
        .filter_map(|b| o.active_path(PlatformId(b)))
        .filter(|p| p.contains(&victim))
        .count();
    println!(
        "[10:00] draining {victim} (Opportunistic): {live_transit} working paths currently via it",
    );
    o.drains
        .request(victim, DrainMode::Opportunistic, o.now(), None);

    // Watch the drain progress: the solver stops routing new paths
    // through the node; traffic bleeds off as topology evolves. The
    // latch condition counts *working* paths through the node — a
    // stale forwarding entry on a disconnected node carries no
    // traffic.
    let mut latched_at = None;
    while o.now() < SimTime::from_hours(20) && latched_at.is_none() {
        o.run_until(o.now() + SimDuration::from_mins(15));
        let transit = (0..10u32)
            .filter(|b| PlatformId(*b) != victim)
            .filter_map(|b| o.active_path(PlatformId(b)))
            .filter(|p| p.contains(&victim))
            .count();
        let own = o
            .intents
            .established()
            .filter(|i| i.link.a.platform == victim || i.link.b.platform == victim)
            .count();
        let l = o.drains.update_latches(o.now(), |_| (transit, own));
        if !l.is_empty() {
            latched_at = Some(o.now());
        }
        println!(
            "[{}] transit via {victim}: {transit:>2}, own links: {own} {}",
            o.now(),
            if latched_at.is_some() {
                "→ LATCHED (safe for maintenance)"
            } else {
                ""
            }
        );
    }

    match latched_at {
        Some(t) => {
            println!("\n{victim} fully drained at {t}; applying software update...");
            // The update takes 20 minutes; the node stays excluded.
            o.run_until(t + SimDuration::from_mins(20));
            o.drains.cancel(victim);
            println!("update complete; drain cancelled — {victim} is schedulable again");
            o.run_until(o.now() + SimDuration::from_hours(1));
            let own = o
                .intents
                .established()
                .filter(|i| i.link.a.platform == victim || i.link.b.platform == victim)
                .count();
            println!("one hour later: {victim} carries {own} links again");
        }
        None => {
            println!("\n{victim} never fully drained before night; the nightly power-down");
            println!("finishes the job — \"we could expect every node to become fully");
            println!("disconnected from the mesh every night\" (Appendix C).");
        }
    }

    if let Some(a) = o.availability.overall(Layer::DataPlane) {
        println!(
            "\ndata-plane availability across the day (drain included): {:.1}%",
            100.0 * a
        );
    }
}
