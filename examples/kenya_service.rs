//! Kenya commercial service: a full serving day with weather.
//!
//! Reproduces the paper's headline deployment shape (§2.1): a fleet
//! serving a rural Kenyan region, afternoon convective storms
//! stressing the B2G links, gauges and an (imperfect) forecast feeding
//! the controller's weather belief, and per-layer availability
//! tracked through the day.
//!
//! Run with: `cargo run --release -p tssdn-examples --bin kenya_service`

use tssdn_core::{Orchestrator, OrchestratorConfig, WeatherModelKind};
use tssdn_geo::GeoPoint;
use tssdn_link::LinkKind;
use tssdn_rf::{RainCell, SyntheticWeather};
use tssdn_sim::{SimDuration, SimTime};
use tssdn_telemetry::Layer;

fn main() {
    println!("== kenya_service: one commercial serving day ==\n");

    let mut config = OrchestratorConfig::kenya(14, 2021);
    config.fleet.spawn_radius_m = 250_000.0;
    // Afternoon thunderstorms around two of the three GS sites.
    let mut weather = SyntheticWeather::new();
    for (i, (lat, lon)) in [(-1.25, 36.6), (-0.45, 39.4)].iter().enumerate() {
        weather.add_cell(RainCell {
            center: GeoPoint::new(*lat, *lon, 0.0),
            vel_east_mps: 6.0,
            vel_north_mps: 1.0,
            radius_m: 15_000.0,
            peak_rain_mm_h: 35.0,
            start_ms: SimTime::from_hours(13 + i as u64).as_ms(),
            end_ms: SimTime::from_hours(17 + i as u64).as_ms(),
        });
    }
    config.weather_truth = weather;
    // Production weather belief: gauges at the GS sites over a
    // displaced, late, weak forecast (§5).
    config.weather_model = WeatherModelKind::WithGauges {
        position_error_m: 25_000.0,
        timing_error_ms: 40 * 60 * 1000,
        intensity_scale: 0.75,
    };
    let mut o = Orchestrator::new(config);

    // Serve the whole day, reporting at key times.
    for (h, label) in [
        (7u64, "dawn bootstrap"),
        (10, "mid-morning steady state"),
        (14, "afternoon storms hitting B2G"),
        (18, "storms clearing"),
        (21, "serving into darkness"),
    ] {
        o.run_until(SimTime::from_hours(h) + SimDuration::from_mins(30));
        let b2g_up = o
            .intents
            .established()
            .filter(|i| i.kind() == LinkKind::B2G)
            .count();
        let b2b_up = o
            .intents
            .established()
            .filter(|i| i.kind() == LinkKind::B2B)
            .count();
        println!(
            "[{:>2}:30] {label:<32} B2B {b2b_up:>2}  B2G {b2g_up}  routes recovered {}",
            h,
            o.recovery.samples().len()
        );
    }
    o.run_until(SimTime::from_hours(24));

    println!("\nend-of-day report:");
    for layer in [Layer::Link, Layer::ControlPlane, Layer::DataPlane] {
        if let Some(a) = o.availability.overall(layer) {
            println!("  {layer:<8} availability: {:>5.1}%", 100.0 * a);
        }
    }
    let b2g = o.ledger.stats(LinkKind::B2G);
    let b2b = o.ledger.stats(LinkKind::B2B);
    println!(
        "  B2G links: {} intents, median lifetime {:.0}s, {:.0}% unexpected ends",
        b2g.intents,
        b2g.median_lifetime_s().unwrap_or(0.0),
        100.0 * b2g.unexpected_end_rate()
    );
    println!(
        "  B2B links: {} intents, median lifetime {:.0}s, {:.0}% unexpected ends",
        b2b.intents,
        b2b.median_lifetime_s().unwrap_or(0.0),
        100.0 * b2b.unexpected_end_rate()
    );
    println!(
        "  command enactments confirmed: {} (of which via satcom: {})",
        o.cdpi.records().len(),
        o.cdpi.records().iter().filter(|r| r.used_satcom).count()
    );
}
