//! Disaster response: how fast can connectivity appear?
//!
//! Loon deployed for the 2017 Peru El Niño floods, post-Maria Puerto
//! Rico, and the 2019 Loreto earthquake (§1 footnote). In those
//! missions the question was bootstrap speed: balloons arrive over an
//! area with one surviving ground station — how quickly does each
//! balloon get a working backhaul path?
//!
//! This example watches the fleet from pre-dawn (06:00) with a single
//! ground station, and measures per-balloon time from mission start to
//! first established link, first in-band control, and first data-plane
//! route — the cold-bootstrap timeline every deployment began with.
//!
//! Run with: `cargo run --release -p tssdn-examples --bin disaster_response`

use tssdn_core::{Orchestrator, OrchestratorConfig};
use tssdn_geo::GeoPoint;
use tssdn_sim::{PlatformId, SimDuration, SimTime};

fn main() {
    println!("== disaster_response: emergency bootstrap over one ground station ==\n");

    let mut config = OrchestratorConfig::kenya(10, 505);
    config.fleet.spawn_radius_m = 200_000.0;
    // Only one surviving ground station.
    config.fleet.ground_sites = vec![GeoPoint::new(-1.25, 36.85, 1_700.0)];
    let mut o = Orchestrator::new(config);
    let n = o.num_balloons() as u32;

    // Mission clock starts pre-dawn: payloads boot as solar charge
    // clears the bootstrap threshold after 06:00.
    o.run_until(SimTime::from_hours(6));
    let t0 = o.now();
    println!("mission start {t0} (pre-dawn); single GS gateway; awaiting payload power...\n");

    let mut first_link: Vec<Option<SimTime>> = vec![None; n as usize];
    let mut first_control: Vec<Option<SimTime>> = vec![None; n as usize];
    let mut first_data: Vec<Option<SimTime>> = vec![None; n as usize];
    let deadline = SimTime::from_hours(13);
    while o.now() < deadline {
        o.run_until(o.now() + SimDuration::from_secs(30));
        for b in 0..n {
            let id = PlatformId(b);
            let i = b as usize;
            if first_link[i].is_none()
                && o.intents
                    .established()
                    .any(|x| x.link.a.platform == id || x.link.b.platform == id)
            {
                first_link[i] = Some(o.now());
            }
            if first_control[i].is_none() && o.cdpi.inband.is_reachable(id, o.now()) {
                first_control[i] = Some(o.now());
            }
            if first_data[i].is_none()
                && o.data_plane_status(id) == tssdn_core::orchestrator::DataPlaneStatus::Up
            {
                first_data[i] = Some(o.now());
            }
        }
        if first_data.iter().all(|x| x.is_some()) {
            break;
        }
    }

    println!("# balloon   first_link  first_control  first_data   (minutes after mission start)");
    let to_min = |t: Option<SimTime>| {
        t.map(|t| format!("{:>7.1}", t.since(t0).as_secs_f64() / 60.0))
            .unwrap_or_else(|| "   --  ".into())
    };
    for b in 0..n as usize {
        println!(
            "  p{b:<8} {:>9} {:>13} {:>11}",
            to_min(first_link[b]),
            to_min(first_control[b]),
            to_min(first_data[b])
        );
    }
    let served = first_data.iter().filter(|x| x.is_some()).count();
    let mut data_times: Vec<f64> = first_data
        .iter()
        .flatten()
        .map(|t| t.since(t0).as_secs_f64() / 60.0)
        .collect();
    data_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!("\n{served}/{n} balloons carrying service traffic within the window");
    if let Some(median) = data_times.get(data_times.len() / 2) {
        println!("median time to service: {median:.0} minutes (satcom bootstrap + mesh relay)");
    }
    println!("\nballoons beyond direct GS range relay through the mesh — the reason");
    println!("Loon's emergency coverage could extend hundreds of km from one gateway.");
}
