//! Vendored `rand_chacha` — a real ChaCha8 keystream generator over
//! the vendored `rand` core traits.
//!
//! The block function is the genuine RFC 8439 ChaCha quarter-round
//! network run for 8 double-rounds, so statistical quality matches
//! the upstream crate; only the seed-expansion byte order differs
//! (the repo depends on determinism, not upstream-exact streams).

pub use rand::rand_core;
use rand::rand_core::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha generator with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words) + stream id (2 words), fixed per seed.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(input.iter()) {
            *s = s.wrapping_add(*i);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of many uniform [0,1) draws ≈ 0.5; bit balance ≈ 32.
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
        let bits: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum::<u32>() / 1000;
        assert!((28..=36).contains(&bits), "{bits}");
    }

    #[test]
    fn chacha_block_changes_every_refill() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
