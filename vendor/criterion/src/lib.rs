//! Vendored minimal `criterion` — wall-clock benchmarking with the
//! API surface the tssdn benches use.
//!
//! This is not a statistical harness: each benchmark warms up
//! briefly, then times batches of iterations until a time budget is
//! spent, and prints the median per-iteration latency. It exists so
//! `cargo bench` (and `cargo test --benches`) work fully offline;
//! numbers are indicative, not publication-grade.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median ns/iter from the measurement phase.
    result_ns: f64,
    measure_budget: Duration,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ~1ms so Instant overhead stays negligible.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.measure_budget || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher), budget: Duration) {
    let mut b = Bencher {
        result_ns: 0.0,
        measure_budget: budget,
    };
    f(&mut b);
    println!("{id:<50} {:>12}/iter", fmt_ns(b.result_ns));
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a name and a displayable parameter.
    pub fn new<P: std::fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Upstream-compat knob: scales the measurement budget (upstream
    /// default sample count is 100).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.measure_budget = Duration::from_millis(3 * n.max(10) as u64);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f, self.measure_budget);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &mut f, self.criterion.measure_budget);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, &mut |b| f(b, input), self.criterion.measure_budget);
        self
    }

    /// End the group (upstream flushes reports here; we just log).
    pub fn finish(self) {
        println!("group {} done", self.name);
    }
}

/// Define a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default().sample_size(10);
        let mut g = c.benchmark_group("g");
        g.bench_function("inner", |b| b.iter(|| black_box(1u32).wrapping_mul(3)));
        for n in [2u64, 4] {
            g.bench_with_input(BenchmarkId::new("param", n), &n, |b, n| {
                b.iter(|| (0..*n).sum::<u64>())
            });
        }
        g.finish();
    }

    #[test]
    fn iter_accepts_fnmut_reference() {
        let mut c = Criterion::default().sample_size(10);
        let mut count = 0u64;
        let mut f = || {
            count += 1;
            count
        };
        c.bench_function("smoke/fnmut", |b| b.iter(&mut f));
        assert!(count > 0);
    }
}
