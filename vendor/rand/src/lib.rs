//! Vendored minimal `rand` — just the API surface tssdn uses.
//!
//! The workspace builds fully offline, so instead of the crates.io
//! `rand` this is a small, self-contained reimplementation of the
//! pieces the simulator needs: the [`RngCore`]/[`SeedableRng`] core
//! traits, the [`Rng`] extension trait (`gen_range`, `gen_bool`,
//! `sample_iter`), and the `Standard` distribution. Generators come
//! from the sibling vendored `rand_chacha` crate. Output streams are
//! deterministic across platforms but are **not** bit-compatible with
//! upstream rand 0.8 — the repo only relies on determinism and
//! statistical uniformity, never on upstream-exact sequences.

pub mod rand_core {
    /// Core infallible random-number generator interface.
    pub trait RngCore {
        /// Next 32 uniformly random bits.
        fn next_u32(&mut self) -> u32;
        /// Next 64 uniformly random bits.
        fn next_u64(&mut self) -> u64;
        /// Fill `dest` with random bytes.
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for c in &mut chunks {
                c.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let b = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&b[..rem.len()]);
            }
        }
    }

    /// A generator seedable from a fixed-size byte seed.
    pub trait SeedableRng: Sized {
        /// The seed array type.
        type Seed: Default + AsMut<[u8]>;

        /// Construct from a full seed.
        fn from_seed(seed: Self::Seed) -> Self;

        /// Construct from a `u64`, expanding via SplitMix64 (matches
        /// upstream's approach in spirit; deterministic and
        /// well-mixed, not upstream-bit-identical).
        fn seed_from_u64(mut state: u64) -> Self {
            let mut seed = Self::Seed::default();
            for chunk in seed.as_mut().chunks_mut(8) {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let b = z.to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
            Self::from_seed(seed)
        }
    }
}

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    use crate::rand_core::RngCore;

    /// Maps raw generator output to values of `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution for a type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Iterator yielding samples from a distribution (see
    /// [`crate::Rng::sample_iter`]).
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    /// Types uniformly sampleable from a range.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range in gen_range");
                    let span = (high as i128 - low as i128) as u128;
                    // Multiply-shift rejection-free mapping: bias is
                    // < 2^-64 for the span sizes the simulator uses.
                    let x = rng.next_u64() as u128;
                    low.wrapping_add(((x * span) >> 64) as $t)
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    assert!(low <= high, "empty range in gen_range");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    let x = rng.next_u64() as u128;
                    low.wrapping_add(((x * span) >> 64) as $t)
                }
            }
        )*};
    }
    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range in gen_range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    low + (high - low) * u
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    Self::sample_range(rng, low, high.next_up())
                }
            }
        )*};
    }
    impl_sample_uniform_float!(f32, f64);

    /// Range-like arguments accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draw a uniform sample from this range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_range_inclusive(rng, *self.start(), *self.end())
        }
    }
}

use distributions::{DistIter, Distribution, SampleRange, Standard};

/// User-facing generator conveniences (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Sample a value the `Standard` distribution supports.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Rge: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        if p >= 1.0 {
            return true;
        }
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Consume the generator into a sampling iterator.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        DistIter {
            distr,
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::distributions::{SampleUniform, Standard};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a mixer: crude but uniform enough
            // for the assertions below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let n: u64 = r.gen_range(10..20u64);
            assert!((10..20).contains(&n));
            let m: u64 = r.gen_range(0..=5u64);
            assert!(m <= 5);
            let i: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(7);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..2000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.05, "{rate}");
    }

    #[test]
    fn float_inclusive_range_reaches_bounds_region() {
        let mut r = Counter(3);
        let x: f64 = SampleUniform::sample_range_inclusive(&mut r, 0.0, 1.0);
        assert!((0.0..=1.0).contains(&x));
    }

    #[test]
    fn standard_u64_uses_full_width() {
        let mut r = Counter(9);
        let xs: Vec<u64> = (0..8).map(|_| Standard.sample(&mut r)).collect();
        assert!(
            xs.iter().any(|x| *x > u32::MAX as u64),
            "not stuck in 32 bits: {xs:?}"
        );
    }
}
