//! Vendored minimal `proptest` — deterministic random property
//! testing with the API surface the tssdn test-suite uses.
//!
//! Supported: the `proptest!` macro over `#[test]` functions with
//! `ident in strategy` arguments, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range strategies for ints and floats, tuple
//! strategies, `prop::collection::vec`, `prop::option::of`, and
//! `proptest::bool::ANY`.
//!
//! Unlike the upstream crate there is no shrinking: a failing case
//! panics with the generated inputs so it can be reproduced directly.
//! Case generation is seeded from the property name, so runs are
//! fully deterministic (no environment-dependent seeds).

use rand::rand_core::SeedableRng;
pub use rand_chacha::ChaCha8Rng;

/// Cases to run per property (upstream default is 256).
pub const DEFAULT_CASES: u32 = 192;
/// Maximum `prop_assume!` rejections before giving up.
pub const MAX_REJECTS: u32 = 65_536;

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Simplified: generation only, no shrink tree.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;
    /// Generate one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

/// Deterministic per-property RNG (seeded from the property name).
pub fn runner_rng(name: &str) -> ChaCha8Rng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h)
}

mod ranges {
    use super::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies.
    use super::Strategy;
    use rand_chacha::ChaCha8Rng;

    /// Uniform `bool` strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut ChaCha8Rng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)`: vectors whose length is uniform in
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            !size.is_empty() || size.start == size.end,
            "empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
            let len = if self.size.start == self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use super::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `of(element)`: `None` 25% of the time, `Some(element)` the rest.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything the tests import.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestCaseResult,
    };

    /// Namespace alias mirroring upstream's `prop::` re-exports.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Assert inside a property; failure reports instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discard the current case (precondition unmet).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define deterministic property tests. See module docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut case: u32 = 0;
                let mut rejects: u32 = 0;
                while case < $crate::DEFAULT_CASES {
                    let mut inputs = String::new();
                    let result: $crate::TestCaseResult = (|| {
                        $(
                            let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                            inputs.push_str(&format!(
                                "{} = {:?}; ",
                                stringify!($arg),
                                &$arg
                            ));
                        )+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match result {
                        Ok(()) => case += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejects += 1;
                            assert!(
                                rejects < $crate::MAX_REJECTS,
                                "property {}: too many prop_assume! rejections",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {}: {}\n  inputs: {}",
                                stringify!($name),
                                case,
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..100, y in -2.0f64..2.0) {
            prop_assert!(x < 100);
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(xs in prop::collection::vec(0u32..10, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|x| *x < 10));
        }

        #[test]
        fn option_strategy_mixes(opts in prop::collection::vec(prop::option::of(0u32..5), 40..60)) {
            let nones = opts.iter().filter(|o| o.is_none()).count();
            // 25% None on 40+ draws: overwhelmingly between 1 and all-1.
            prop_assert!(nones < opts.len());
        }

        #[test]
        fn tuples_and_bools(pair in (0u32..4, 0u32..4), flag in crate::bool::ANY) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            let _ = flag;
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn determinism_across_runner_instances() {
        use crate::Strategy;
        let s = 0u64..1000;
        let mut a = crate::runner_rng("x");
        let mut b = crate::runner_rng("x");
        let xs: Vec<u64> = (0..8).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
