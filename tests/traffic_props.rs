//! Property-based tests for the tiered-service traffic allocator:
//! fairness within a class, strict priority across classes, and
//! byte-identity of the batch-freeze production filler against the
//! slow reference fillers (`tssdn_traffic::reference`) — plus the
//! hierarchical site×class aggregation layer's contracts: lossless
//! collapse to the flat allocator on singleton and uncongested
//! inputs, byte-identity against the naive hierarchical oracle,
//! per-link feasibility, and control isolation through the aggregate
//! tree.

use proptest::prelude::*;
use tssdn_traffic::reference::{
    allocate_hierarchical_reference, allocate_reference, allocate_weighted_unbatched,
};
use tssdn_traffic::{
    AggregateMember, AggregateSpec, FairShareAllocator, FlowSpec, HierarchicalAllocator,
    TrafficClass,
};

const N_LINKS: usize = 6;

/// Raw generated flow: (link bitmask over `N_LINKS`, weight, class
/// pick, demand). Mask 0 models a linkless (wired-tail) flow; class
/// pick 0 maps to the strict-priority control class (~25%).
type RawFlow = (u8, u32, u8, u64);

/// Element strategy for one raw flow (mirrors [`RawFlow`]).
type RawFlowStrategy = (
    std::ops::Range<u8>,
    std::ops::Range<u32>,
    std::ops::Range<u8>,
    std::ops::Range<u64>,
);

/// Strategy for one random allocation case.
fn raw_case() -> (
    prop::collection::VecStrategy<RawFlowStrategy>,
    prop::collection::VecStrategy<std::ops::Range<u64>>,
) {
    (
        prop::collection::vec((0u8..64, 1u32..5, 0u8..4, 0u64..50_000), 1..12),
        prop::collection::vec(0u64..100_000, 6..7),
    )
}

fn specs_of(flows: &[RawFlow]) -> Vec<FlowSpec> {
    flows
        .iter()
        .map(|&(mask, w, pick, _)| {
            let links: Vec<u32> = (0..N_LINKS as u32).filter(|l| mask >> l & 1 == 1).collect();
            let class = if pick == 0 {
                TrafficClass::Control
            } else {
                TrafficClass::Bulk
            };
            FlowSpec::new(links, w, class)
        })
        .collect()
}

fn demands_of(flows: &[RawFlow]) -> Vec<u64> {
    flows.iter().map(|f| f.3).collect()
}

fn allocate(specs: &[FlowSpec], demands: &[u64], caps: &[u64]) -> Vec<u64> {
    let mut a = FairShareAllocator::new(1);
    a.set_flows(specs.to_vec(), N_LINKS);
    a.allocate(demands, caps)
}

/// Fold the raw flows into aggregates keyed by (link set, class) —
/// the invariant real site×class aggregation guarantees (members of
/// one aggregate cross identical links), over arbitrary generated
/// flow sets.
fn groups_of(flows: &[RawFlow]) -> Vec<AggregateSpec> {
    let mut keys: Vec<(u8, TrafficClass)> = Vec::new();
    let mut groups: Vec<AggregateSpec> = Vec::new();
    for (fi, &(mask, w, pick, _)) in flows.iter().enumerate() {
        let class = if pick == 0 {
            TrafficClass::Control
        } else {
            TrafficClass::Bulk
        };
        let gi = keys
            .iter()
            .position(|&k| k == (mask, class))
            .unwrap_or_else(|| {
                keys.push((mask, class));
                groups.push(AggregateSpec {
                    links: (0..N_LINKS as u32).filter(|l| mask >> l & 1 == 1).collect(),
                    class,
                    members: Vec::new(),
                });
                groups.len() - 1
            });
        groups[gi].members.push(AggregateMember {
            flow: fi as u32,
            weight: w,
        });
    }
    groups
}

fn allocate_hier(
    groups: &[AggregateSpec],
    n_flows: usize,
    demands: &[u64],
    caps: &[u64],
) -> Vec<u64> {
    let mut h = HierarchicalAllocator::new(1);
    h.set_aggregates(groups.to_vec(), N_LINKS, n_flows);
    h.allocate(demands, caps)
}

proptest! {
    /// The batch-freeze production filler is byte-identical to the
    /// one-freeze-per-round reference on arbitrary weighted, classed
    /// flow sets — the two may only differ in round count.
    #[test]
    fn batch_freeze_matches_unbatched_filler(case in raw_case()) {
        let (flows, caps) = case;
        let specs = specs_of(&flows);
        let demands = demands_of(&flows);
        let fast = allocate(&specs, &demands, &caps);
        let slow = allocate_weighted_unbatched(&specs, N_LINKS, &demands, &caps);
        prop_assert_eq!(fast, slow);
    }

    /// Compatibility oracle: with every flow at weight 1, class Bulk,
    /// the tiered allocator collapses to the pre-tiering (PR 3)
    /// filler bit-for-bit.
    #[test]
    fn weight1_bulk_collapses_to_pr3_reference(case in raw_case()) {
        let (flows, caps) = case;
        let flow_links: Vec<Vec<u32>> =
            specs_of(&flows).into_iter().map(|s| s.links).collect();
        let specs: Vec<FlowSpec> = flow_links.iter().cloned().map(FlowSpec::bulk).collect();
        let demands = demands_of(&flows);
        let tiered = allocate(&specs, &demands, &caps);
        let pr3 = allocate_reference(&flow_links, N_LINKS, &demands, &caps);
        prop_assert_eq!(tiered, pr3);
    }

    /// Feasibility: no flow exceeds its demand, no link carries more
    /// than its capacity, and linkless flows resolve to their demand.
    #[test]
    fn allocation_is_feasible(case in raw_case()) {
        let (flows, caps) = case;
        let specs = specs_of(&flows);
        let demands = demands_of(&flows);
        let rates = allocate(&specs, &demands, &caps);
        let mut carried = [0u64; N_LINKS];
        for (f, spec) in specs.iter().enumerate() {
            prop_assert!(rates[f] <= demands[f], "flow {f} over demand");
            if spec.links.is_empty() {
                prop_assert_eq!(rates[f], demands[f], "linkless flow {f} uncapped");
            }
            for &l in &spec.links {
                carried[l as usize] += rates[f];
            }
        }
        for l in 0..N_LINKS {
            prop_assert!(carried[l] <= caps[l], "link {l}: {} > {}", carried[l], caps[l]);
        }
    }

    /// Strict priority: the control class is allocated as if bulk did
    /// not exist — zeroing all bulk demand changes no control rate.
    #[test]
    fn control_rates_ignore_bulk_load(case in raw_case()) {
        let (flows, caps) = case;
        let specs = specs_of(&flows);
        let demands = demands_of(&flows);
        let with_bulk = allocate(&specs, &demands, &caps);
        let control_only: Vec<u64> = demands
            .iter()
            .zip(&specs)
            .map(|(&d, s)| if s.class == TrafficClass::Control { d } else { 0 })
            .collect();
        let without_bulk = allocate(&specs, &control_only, &caps);
        for (f, spec) in specs.iter().enumerate() {
            if spec.class == TrafficClass::Control {
                prop_assert_eq!(with_bulk[f], without_bulk[f], "control flow {f} perturbed");
            }
        }
    }

    /// Bulk is starved only at saturation: a routed bulk flow that
    /// offered demand but received nothing must cross a link whose
    /// final residual cannot fit even one fill-level unit of the
    /// initially-active bulk weight crossing it.
    #[test]
    fn bulk_starves_only_when_a_link_saturates(case in raw_case()) {
        let (flows, caps) = case;
        let specs = specs_of(&flows);
        let demands = demands_of(&flows);
        let rates = allocate(&specs, &demands, &caps);
        let mut residual = caps.clone();
        let mut bulk_weight = [0u64; N_LINKS];
        for (f, spec) in specs.iter().enumerate() {
            for &l in &spec.links {
                residual[l as usize] -= rates[f];
                if spec.class == TrafficClass::Bulk && demands[f] > 0 {
                    bulk_weight[l as usize] += spec.weight as u64;
                }
            }
        }
        for (f, spec) in specs.iter().enumerate() {
            let starved = spec.class == TrafficClass::Bulk
                && demands[f] > 0
                && !spec.links.is_empty()
                && rates[f] == 0;
            if starved {
                let saturated = spec
                    .links
                    .iter()
                    .any(|&l| residual[l as usize] < bulk_weight[l as usize]);
                prop_assert!(saturated, "flow {f} starved with headroom: {rates:?}");
            }
        }
    }

    /// Within a class, flows sharing an identical link set and both
    /// held below demand split the bottleneck in proportion to their
    /// weights, up to the freeze-boundary slack the progressive
    /// filler allows: when one of the pair freezes on a saturating
    /// link, the survivor can still collect at most that link's
    /// residual, which is strictly less than the link's active weight
    /// sum at the freeze. Hence `|rate_a·w_b − rate_b·w_a|` is
    /// bounded by `max(w_a, w_b) · Σ_l W_init[l]` over their links.
    #[test]
    fn equal_path_flows_split_by_weight(case in raw_case()) {
        let (flows, caps) = case;
        let specs = specs_of(&flows);
        let demands = demands_of(&flows);
        let rates = allocate(&specs, &demands, &caps);
        let mut class_weight = [[0u64; 2]; N_LINKS];
        for (f, spec) in specs.iter().enumerate() {
            if demands[f] > 0 {
                for &l in &spec.links {
                    class_weight[l as usize][spec.class as usize] += spec.weight as u64;
                }
            }
        }
        for a in 0..specs.len() {
            for b in (a + 1)..specs.len() {
                let same = specs[a].class == specs[b].class
                    && specs[a].links == specs[b].links
                    && !specs[a].links.is_empty();
                let below = rates[a] < demands[a] && rates[b] < demands[b];
                if same && below {
                    let (wa, wb) = (specs[a].weight as u128, specs[b].weight as u128);
                    let skew = (rates[a] as u128 * wb).abs_diff(rates[b] as u128 * wa);
                    let shared_weight: u128 = specs[a]
                        .links
                        .iter()
                        .map(|&l| class_weight[l as usize][specs[a].class as usize] as u128)
                        .sum();
                    prop_assert!(
                        skew <= wa.max(wb) * shared_weight,
                        "flows {a},{b} off weight ratio beyond freeze slack: \
                         {:?} vs {:?} (skew {skew})",
                        (rates[a], specs[a].weight),
                        (rates[b], specs[b].weight)
                    );
                }
            }
        }
    }

    /// Lossless collapse, singleton form: with one flow per
    /// aggregate, the hierarchical tree is a relabeling of the flat
    /// problem, so the distributed rates are byte-identical to the
    /// flat allocator on arbitrary inputs — congested or not.
    #[test]
    fn singleton_hierarchy_collapses_to_flat(case in raw_case()) {
        let (flows, caps) = case;
        let specs = specs_of(&flows);
        let demands = demands_of(&flows);
        let singleton: Vec<AggregateSpec> = specs
            .iter()
            .enumerate()
            .map(|(fi, s)| AggregateSpec {
                links: s.links.clone(),
                class: s.class,
                members: vec![AggregateMember { flow: fi as u32, weight: s.weight }],
            })
            .collect();
        let hier = allocate_hier(&singleton, specs.len(), &demands, &caps);
        let flat = allocate(&specs, &demands, &caps);
        prop_assert_eq!(hier, flat);
    }

    /// Lossless collapse, uncongested form: when every link has
    /// headroom for the full offered load, both the flat and the
    /// hierarchical allocator grant every flow its exact demand —
    /// multi-member aggregation loses nothing without contention.
    #[test]
    fn uncongested_aggregation_is_lossless(
        flows in prop::collection::vec((0u8..64, 1u32..5, 0u8..4, 0u64..50_000), 1..12),
    ) {
        // ≤12 flows × <50k demand < 600k — 1M bps per link clears it.
        let caps = vec![1_000_000u64; N_LINKS];
        let specs = specs_of(&flows);
        let demands = demands_of(&flows);
        let groups = groups_of(&flows);
        let hier = allocate_hier(&groups, specs.len(), &demands, &caps);
        let flat = allocate(&specs, &demands, &caps);
        prop_assert_eq!(&hier, &flat);
        prop_assert_eq!(&hier, &demands);
    }

    /// The optimized hierarchical allocator (batch-freeze fill,
    /// recycled scratch) is byte-identical to the naive
    /// one-freeze-per-round hierarchical oracle on arbitrary grouped
    /// inputs.
    #[test]
    fn hierarchical_matches_naive_reference(case in raw_case()) {
        let (flows, caps) = case;
        let demands = demands_of(&flows);
        let groups = groups_of(&flows);
        let fast = allocate_hier(&groups, flows.len(), &demands, &caps);
        let slow = allocate_hierarchical_reference(&groups, N_LINKS, flows.len(), &demands, &caps);
        prop_assert_eq!(fast, slow);
    }

    /// Feasibility through the aggregate tree: no member exceeds its
    /// demand, and no link carries more than its capacity when each
    /// member's rate is charged to its aggregate's link set.
    #[test]
    fn hierarchical_allocation_is_feasible(case in raw_case()) {
        let (flows, caps) = case;
        let demands = demands_of(&flows);
        let groups = groups_of(&flows);
        let rates = allocate_hier(&groups, flows.len(), &demands, &caps);
        let mut carried = [0u64; N_LINKS];
        for g in &groups {
            for m in &g.members {
                let f = m.flow as usize;
                prop_assert!(rates[f] <= demands[f], "flow {f} over demand");
                if g.links.is_empty() {
                    prop_assert_eq!(rates[f], demands[f], "linkless flow {f} uncapped");
                }
                for &l in &g.links {
                    carried[l as usize] += rates[f];
                }
            }
        }
        for l in 0..N_LINKS {
            prop_assert!(carried[l] <= caps[l], "link {l}: {} > {}", carried[l], caps[l]);
        }
    }

    /// Strict priority survives aggregation: zeroing all bulk demand
    /// changes no control member's rate — control aggregates are
    /// filled as if bulk did not exist, and the within-aggregate
    /// distribution sees the same budget either way.
    #[test]
    fn hierarchical_control_ignores_bulk_load(case in raw_case()) {
        let (flows, caps) = case;
        let demands = demands_of(&flows);
        let groups = groups_of(&flows);
        let with_bulk = allocate_hier(&groups, flows.len(), &demands, &caps);
        let control_only: Vec<u64> = flows
            .iter()
            .enumerate()
            .map(|(f, &(_, _, pick, _))| if pick == 0 { demands[f] } else { 0 })
            .collect();
        let without_bulk = allocate_hier(&groups, flows.len(), &control_only, &caps);
        for g in &groups {
            if g.class != TrafficClass::Control {
                continue;
            }
            for m in &g.members {
                let f = m.flow as usize;
                prop_assert_eq!(with_bulk[f], without_bulk[f], "control flow {} perturbed", f);
            }
        }
    }
}
