//! Property-based tests for the store-and-forward plane: the bounded
//! buffer against a straight-line reference model (byte bound, age
//! bound, FIFO determinism, bit conservation), and the traffic
//! engine's buffering policy under arbitrary route flaps (Control
//! never buffers, cumulative delivered ≤ offered, no leaked bits,
//! bit-identical reruns).

use proptest::prelude::*;
use tssdn_dataplane::StoreForwardBuffer;
use tssdn_sim::{PlatformId, RngStreams, SimDuration, SimTime};
use tssdn_traffic::{TopologyView, TrafficClass, TrafficConfig, TrafficEngine};

// ---------------------------------------------------------------- //
// Buffer vs reference model                                        //
// ---------------------------------------------------------------- //

/// One buffer operation: `kind` 0–1 enqueues (biased — buffers spend
/// most of their life absorbing), 2 expires, 3 drains. `dt` advances
/// the clock before the operation; `amount` is bits (enqueue) or a
/// drain budget.
type RawOp = (u8, u32, u64, u64);

fn ops() -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec((0u8..4, 0u32..5, 0u64..300, 0u64..200), 1..60)
}

/// The obviously-correct model: a flat chunk list plus the same
/// lifetime counters, written with no regard for efficiency.
struct ModelBuffer {
    max_bits: u64,
    max_age_ms: u64,
    chunks: Vec<(u32, u64, u64)>, // (flow, enqueued_ms, bits)
    queued: u64,
    drained: u64,
    evicted: u64,
    transferred_in: u64,
    transferred_out: u64,
}

impl ModelBuffer {
    fn new(max_bytes: u64, max_age_ms: u64) -> Self {
        ModelBuffer {
            max_bits: max_bytes * 8,
            max_age_ms,
            chunks: Vec::new(),
            queued: 0,
            drained: 0,
            evicted: 0,
            transferred_in: 0,
            transferred_out: 0,
        }
    }

    fn resident(&self) -> u64 {
        self.chunks.iter().map(|c| c.2).sum()
    }

    fn enqueue(&mut self, flow: u32, now: u64, bits: u64) {
        self.queued += bits;
        if bits == 0 || self.max_bits == 0 {
            self.evicted += bits;
            return;
        }
        self.chunks.push((flow, now, bits));
        while self.resident() > self.max_bits {
            let over = self.resident() - self.max_bits;
            let front = &mut self.chunks[0];
            if front.2 <= over {
                self.evicted += front.2;
                self.chunks.remove(0);
            } else {
                front.2 -= over;
                self.evicted += over;
            }
        }
    }

    fn expire(&mut self, now: u64) {
        // Inclusive age bound: a chunk exactly at max_age is evicted.
        while let Some(front) = self.chunks.first() {
            if now.saturating_sub(front.1) < self.max_age_ms {
                break;
            }
            self.evicted += front.2;
            self.chunks.remove(0);
        }
    }

    fn drain(&mut self, now: u64, mut budget: u64) -> Vec<(u32, u64, u64)> {
        let mut out = Vec::new();
        while budget > 0 && !self.chunks.is_empty() {
            let front = &mut self.chunks[0];
            let take = front.2.min(budget);
            out.push((front.0, take, now.saturating_sub(front.1)));
            budget -= take;
            self.drained += take;
            if take == front.2 {
                self.chunks.remove(0);
            } else {
                front.2 -= take;
            }
        }
        out
    }

    /// Custody extraction: FIFO like a drain, but the chunks keep
    /// their enqueue stamps and count as transferred-out.
    fn extract(&mut self, mut budget: u64) -> Vec<(u32, u64, u64)> {
        let mut out = Vec::new();
        while budget > 0 && !self.chunks.is_empty() {
            let front = &mut self.chunks[0];
            let take = front.2.min(budget);
            out.push((front.0, front.1, take));
            budget -= take;
            self.transferred_out += take;
            if take == front.2 {
                self.chunks.remove(0);
            } else {
                front.2 -= take;
            }
        }
        out
    }

    /// Custody acceptance: refuse over-age arrivals, fill the free
    /// space newest-first (never evicting resident bits, trimming the
    /// boundary chunk), and keep the queue in enqueue-time order with
    /// residents ahead of arrivals on ties. Returns (accepted,
    /// refused).
    fn accept(&mut self, mut incoming: Vec<(u32, u64, u64)>, now: u64) -> (u64, u64) {
        incoming.sort_by_key(|c| c.1);
        let mut refused = 0u64;
        let mut fresh: Vec<(u32, u64, u64)> = Vec::new();
        for c in incoming {
            if c.2 == 0 {
                continue;
            }
            if now.saturating_sub(c.1) >= self.max_age_ms {
                refused += c.2;
            } else {
                fresh.push(c);
            }
        }
        let mut room = self.max_bits - self.resident();
        let mut accepted = 0u64;
        let mut taken: Vec<(u32, u64, u64)> = Vec::new();
        for mut c in fresh.into_iter().rev() {
            if room == 0 {
                refused += c.2;
                continue;
            }
            if c.2 > room {
                refused += c.2 - room;
                c.2 = room;
            }
            room -= c.2;
            accepted += c.2;
            taken.push(c);
        }
        taken.reverse();
        // Stable sort: residents are already in stamp order and come
        // first in the vec, so they win ties against arrivals.
        self.chunks.extend(taken);
        self.chunks.sort_by_key(|c| c.1);
        self.transferred_in += accepted;
        (accepted, refused)
    }
}

proptest! {
    /// The production buffer is step-for-step identical to the
    /// reference model on arbitrary op sequences — same drain output
    /// (flows, bits, ages), same lifetime counters — and it never
    /// exceeds its byte bound; after an expire, never its age bound.
    #[test]
    fn buffer_matches_reference_model(
        max_bytes in 0u64..64,
        max_age in 0u64..2_000,
        raw in ops(),
    ) {
        let mut real: StoreForwardBuffer<u32> =
            StoreForwardBuffer::new(max_bytes, max_age);
        let mut model = ModelBuffer::new(max_bytes, max_age);
        let mut now = 0u64;
        for (kind, flow, dt, amount) in raw {
            now += dt;
            match kind {
                0 | 1 => {
                    real.enqueue(flow, now, amount);
                    model.enqueue(flow, now, amount);
                }
                2 => {
                    real.expire(now);
                    model.expire(now);
                    // Age bound holds right after an expire pass
                    // (inclusive: exactly-at-bound chunks are gone).
                    if let Some(age) = real.oldest_age_ms(now) {
                        prop_assert!(age < max_age, "over-age chunk kept: {age}");
                    }
                }
                _ => {
                    let drained: Vec<(u32, u64, u64)> = real
                        .drain(now, amount)
                        .into_iter()
                        .map(|d| (d.flow, d.bits, d.age_ms))
                        .collect();
                    prop_assert_eq!(drained, model.drain(now, amount));
                }
            }
            // Byte bound holds after every single operation.
            prop_assert!(real.total_bits() <= real.max_bits());
            prop_assert_eq!(real.total_bits(), model.resident());
        }
        prop_assert_eq!(real.queued_bits(), model.queued);
        prop_assert_eq!(real.drained_bits(), model.drained);
        prop_assert_eq!(real.evicted_bits(), model.evicted);
        // Conservation: every queued bit is drained, evicted, or
        // still resident — none leak.
        prop_assert_eq!(
            real.queued_bits(),
            real.drained_bits() + real.evicted_bits() + real.total_bits()
        );
    }

    /// A two-buffer custody pipe (extract from A, accept into B)
    /// tracks the reference model step for step: same accept/refuse
    /// split, same drain output from the custodian, same ledgers on
    /// both ends — and the cross-buffer conservation algebra closes:
    /// everything A queued is drained, evicted, resident, or
    /// transferred out; everything transferred out is accepted by B
    /// or refused.
    #[test]
    fn custody_handoff_matches_reference_model(
        max_bytes_a in 0u64..64,
        max_bytes_b in 0u64..64,
        max_age in 0u64..2_000,
        raw in prop::collection::vec((0u8..6, 0u32..5, 0u64..300, 0u64..200), 1..60),
    ) {
        let mut real_a: StoreForwardBuffer<u32> =
            StoreForwardBuffer::new(max_bytes_a, max_age);
        let mut real_b: StoreForwardBuffer<u32> =
            StoreForwardBuffer::new(max_bytes_b, max_age);
        let mut model_a = ModelBuffer::new(max_bytes_a, max_age);
        let mut model_b = ModelBuffer::new(max_bytes_b, max_age);
        let mut now = 0u64;
        let mut refused_total = 0u64;
        for (kind, flow, dt, amount) in raw {
            now += dt;
            match kind {
                0 | 1 => {
                    real_a.enqueue(flow, now, amount);
                    model_a.enqueue(flow, now, amount);
                }
                2 => {
                    real_a.expire(now);
                    real_b.expire(now);
                    model_a.expire(now);
                    model_b.expire(now);
                }
                3 => {
                    let drained: Vec<(u32, u64, u64)> = real_b
                        .drain(now, amount)
                        .into_iter()
                        .map(|d| (d.flow, d.bits, d.age_ms))
                        .collect();
                    prop_assert_eq!(drained, model_b.drain(now, amount));
                }
                4 => {
                    let chunks = real_a.extract_custody(amount);
                    let model_chunks = model_a.extract(amount);
                    let as_tuples: Vec<(u32, u64, u64)> = chunks
                        .iter()
                        .map(|c| (c.flow, c.enqueued_ms, c.bits))
                        .collect();
                    prop_assert_eq!(&as_tuples, &model_chunks, "extract diverged");
                    let (acc, refu) = real_b.accept_custody(chunks, now);
                    let (m_acc, m_refu) = model_b.accept(model_chunks, now);
                    prop_assert_eq!((acc, refu), (m_acc, m_refu), "accept diverged");
                    refused_total += refu;
                }
                _ => {
                    let drained: Vec<(u32, u64, u64)> = real_a
                        .drain(now, amount)
                        .into_iter()
                        .map(|d| (d.flow, d.bits, d.age_ms))
                        .collect();
                    prop_assert_eq!(drained, model_a.drain(now, amount));
                }
            }
            prop_assert!(real_a.total_bits() <= real_a.max_bits());
            prop_assert!(real_b.total_bits() <= real_b.max_bits());
            prop_assert_eq!(real_a.total_bits(), model_a.resident());
            prop_assert_eq!(real_b.total_bits(), model_b.resident());
        }
        prop_assert_eq!(real_a.transferred_out_bits(), model_a.transferred_out);
        prop_assert_eq!(real_b.transferred_in_bits(), model_b.transferred_in);
        // Per-buffer conservation, custody legs included.
        prop_assert_eq!(
            real_a.queued_bits(),
            real_a.drained_bits()
                + real_a.evicted_bits()
                + real_a.total_bits()
                + real_a.transferred_out_bits()
        );
        prop_assert_eq!(
            real_b.transferred_in_bits(),
            real_b.drained_bits() + real_b.evicted_bits() + real_b.total_bits()
        );
        // The pipe itself conserves: A's outflow lands in B or is
        // refused on arrival — nothing vanishes in between.
        prop_assert_eq!(
            real_a.transferred_out_bits(),
            real_b.transferred_in_bits() + refused_total
        );
    }

    /// Determinism restated at the API level: replaying the same op
    /// sequence into a fresh buffer reproduces the exact final state.
    #[test]
    fn buffer_replay_is_bit_identical(raw in ops()) {
        let run = |raw: &[RawOp]| {
            let mut b: StoreForwardBuffer<u32> = StoreForwardBuffer::new(32, 500);
            let mut now = 0u64;
            let mut drains: Vec<(u32, u64, u64)> = Vec::new();
            for &(kind, flow, dt, amount) in raw {
                now += dt;
                match kind {
                    0 | 1 => {
                        b.enqueue(flow, now, amount);
                    }
                    2 => {
                        b.expire(now);
                    }
                    _ => drains.extend(
                        b.drain(now, amount).iter().map(|d| (d.flow, d.bits, d.age_ms)),
                    ),
                }
            }
            (b.total_bits(), b.queued_bits(), b.drained_bits(), b.evicted_bits(), drains)
        };
        prop_assert_eq!(run(&raw), run(&raw));
    }
}

// ---------------------------------------------------------------- //
// Engine-level policy under arbitrary route flaps                  //
// ---------------------------------------------------------------- //

const GS: PlatformId = PlatformId(100);
const EC: PlatformId = PlatformId(101);

fn view_for(sites: &[PlatformId], cap_bps: u64) -> TopologyView {
    let mut v = TopologyView::default();
    for &s in sites {
        v.paths.insert(s, vec![s, GS, EC]);
        v.link_capacity_bps.insert((s.min(GS), s.max(GS)), cap_bps);
        v.eligible.insert(s);
    }
    v
}

/// Run one engine over a flap pattern: tick `i` sees a route iff
/// `flaps[i]`. Returns the cumulative counters the properties check.
#[allow(clippy::type_complexity)]
fn flap_run(
    seed: u64,
    cap_bps: u64,
    flaps: &[bool],
) -> (u64, u64, (u64, u64, u64, u64), Vec<(u64, u64, u128)>) {
    let config = TrafficConfig {
        workers: 1,
        ..TrafficConfig::default()
    };
    let sites = [PlatformId(0), PlatformId(1)];
    let mut e = TrafficEngine::new(config, &sites, &RngStreams::new(seed));
    let up = view_for(&sites, cap_bps);
    let mut dark = up.clone();
    dark.paths.clear();
    for (i, &routed) in flaps.iter().enumerate() {
        let now = SimTime::from_hours(18) + SimDuration::from_mins(i as u64);
        let view = if routed { &up } else { &dark };
        e.tick(now, SimDuration::from_mins(1), view);
    }
    let t = e.snf_totals();
    let control_stats: Vec<(u64, u64, u128)> = e
        .demand()
        .flows()
        .iter()
        .zip(e.flow_stats())
        .filter(|(f, _)| f.class == TrafficClass::Control)
        .map(|(_, s)| (s.buffered_bits, s.drained_bits, s.age_bits_ms))
        .collect();
    (
        e.series().offered_bits(),
        e.series().delivered_bits(),
        (
            t.queued_bits,
            t.drained_bits,
            t.evicted_bits,
            t.buffered_bits,
        ),
        control_stats,
    )
}

/// Like [`flap_run`], but a balloon loss lands at tick `kill_at`: on
/// the tick before it a custodian is designated for site 0 (as the
/// orchestrator would on a loss warning) over a lateral link, and
/// from `kill_at` on the site is dead. The custodian keeps a route of
/// its own whenever the mesh is up, so rescued bits can drain.
#[allow(clippy::type_complexity)]
fn custody_flap_run(
    seed: u64,
    cap_bps: u64,
    flaps: &[bool],
    kill_at: usize,
    custody_on: bool,
) -> (u64, u64, (u64, u64, u64, u64, u64), u64) {
    let mut config = TrafficConfig {
        workers: 1,
        ..TrafficConfig::default()
    };
    config.store_forward.custody = custody_on;
    let sites = [PlatformId(0), PlatformId(1)];
    let custodian = PlatformId(9);
    let mut e = TrafficEngine::new(config, &sites, &RngStreams::new(seed));
    for (i, &routed) in flaps.iter().enumerate() {
        let mut view = view_for(&sites, cap_bps);
        if !routed {
            view.paths.clear();
        } else {
            view.paths.insert(custodian, vec![custodian, GS, EC]);
            view.link_capacity_bps
                .insert((custodian.min(GS), custodian.max(GS)), cap_bps);
            view.eligible.insert(custodian);
        }
        if i + 1 == kill_at {
            view.custody.insert(PlatformId(0), custodian);
            view.link_capacity_bps
                .insert((PlatformId(0), custodian), cap_bps);
        }
        if i >= kill_at {
            view.dead.insert(PlatformId(0));
            view.eligible.remove(&PlatformId(0));
        }
        let now = SimTime::from_hours(18) + SimDuration::from_mins(i as u64);
        e.tick(now, SimDuration::from_mins(1), &view);
    }
    let t = e.snf_totals();
    (
        e.series().offered_bits(),
        e.series().delivered_bits(),
        (
            t.queued_bits,
            t.drained_bits,
            t.evicted_bits,
            t.buffered_bits,
            t.in_transit_bits,
        ),
        t.custody_initiated_bits,
    )
}

proptest! {
    /// Under any outage/recovery pattern: Control flows never touch
    /// the buffer, cumulative delivered bits never exceed offered,
    /// queued bits are fully accounted (drained + evicted +
    /// resident), and the whole run is bit-identical on a rerun.
    #[test]
    fn engine_buffering_policy_holds_under_flaps(
        seed in 0u64..500,
        cap_mbps in 1u64..200,
        flaps in prop::collection::vec(prop::bool::ANY, 1..18),
    ) {
        let cap = cap_mbps * 1_000_000;
        let (offered, delivered, totals, control) = flap_run(seed, cap, &flaps);
        let (queued, drained, evicted, resident) = totals;
        for (f, &(buffered, drained_f, age)) in control.iter().enumerate() {
            prop_assert_eq!(buffered, 0, "control flow {f} buffered bits");
            prop_assert_eq!(drained_f, 0, "control flow {f} drained bits");
            prop_assert_eq!(age, 0, "control flow {f} has delivery age");
        }
        prop_assert!(delivered <= offered, "{delivered} > {offered}");
        prop_assert_eq!(queued, drained + evicted + resident, "bits leaked");
        if flaps.iter().any(|r| !r) {
            prop_assert!(queued > 0, "a routeless tick must buffer bulk bits");
        }
        prop_assert_eq!(
            flap_run(seed, cap, &flaps),
            (offered, delivered, totals, control),
            "rerun diverged"
        );
    }

    /// The extended conservation invariant survives an arbitrary
    /// outage pattern with a mid-run balloon loss, custody on or off:
    /// `queued == drained + evicted + resident + in_transit` (the
    /// engine also debug-asserts this at every tick boundary), no bit
    /// is delivered twice, custody-off never initiates a transfer,
    /// and the whole run replays bit-identically.
    #[test]
    fn custody_conserves_under_flaps_and_loss(
        seed in 0u64..300,
        cap_mbps in 1u64..200,
        flaps in prop::collection::vec(prop::bool::ANY, 2..16),
        kill_at in 1usize..16,
        custody_on in prop::bool::ANY,
    ) {
        let cap = cap_mbps * 1_000_000;
        let kill = kill_at.min(flaps.len() - 1).max(1);
        let out = custody_flap_run(seed, cap, &flaps, kill, custody_on);
        let (offered, delivered, totals, initiated) = out;
        let (queued, drained, evicted, resident, transit) = totals;
        prop_assert!(delivered <= offered, "{delivered} > {offered}");
        prop_assert_eq!(
            queued,
            drained + evicted + resident + transit,
            "bits leaked across the custody handoff"
        );
        if !custody_on {
            prop_assert_eq!(initiated, 0, "custody-off must never transfer");
        }
        prop_assert_eq!(
            custody_flap_run(seed, cap, &flaps, kill, custody_on),
            out,
            "rerun diverged"
        );
    }
}
