//! Property-based tests on the core data structures and invariants,
//! spanning crates (geo geometry, sim time/queue, manet topology,
//! dataplane routing, telemetry stats).

use proptest::prelude::*;
use std::collections::BTreeSet;
use tssdn_core::reference::solve_reference;
use tssdn_core::{CandidateGraph, CandidateLink, Solver};
use tssdn_dataplane::{
    BackhaulRequest, DrainMode, DrainRegistry, PrefixAllocator, RouteEntry, RoutingFabric,
};
use tssdn_geo::{AzEl, GeoPoint, ObstructionMask};
use tssdn_link::{LinkKind, TransceiverId};
use tssdn_manet::Topology;
use tssdn_rf::LinkQuality;
use tssdn_sim::{EventQueue, PlatformId, SimTime};
use tssdn_telemetry::{mean, percentile};

/// Map a raw platform index to (id, is_ground_station): 0..7 are
/// balloons, 7..10 the ground stations 100..103.
fn plat(x: u32) -> (PlatformId, bool) {
    if x < 7 {
        (PlatformId(x), false)
    } else {
        (PlatformId(100 + (x - 7)), true)
    }
}

proptest! {
    // ---------------- geo ----------------

    #[test]
    fn ecef_roundtrip_any_point(
        lat in -89.0f64..89.0,
        lon in -179.9f64..179.9,
        alt in 0.0f64..25_000.0,
    ) {
        let p = GeoPoint::new(lat, lon, alt);
        let back = p.to_ecef().to_geo();
        prop_assert!((back.lat_deg - lat).abs() < 1e-6);
        prop_assert!((back.lon_deg - lon).abs() < 1e-6);
        prop_assert!((back.alt_m - alt).abs() < 0.1);
    }

    #[test]
    fn slant_range_at_least_ground_distance(
        lat1 in -5.0f64..5.0, lon1 in 30.0f64..45.0,
        lat2 in -5.0f64..5.0, lon2 in 30.0f64..45.0,
        alt1 in 0.0f64..20_000.0, alt2 in 0.0f64..20_000.0,
    ) {
        let a = GeoPoint::new(lat1, lon1, alt1);
        let b = GeoPoint::new(lat2, lon2, alt2);
        let slant = a.slant_range_m(&b);
        let alt_diff = (alt1 - alt2).abs();
        prop_assert!(slant + 1e-6 >= alt_diff, "slant {slant} < alt diff {alt_diff}");
        // Symmetry.
        prop_assert!((slant - b.slant_range_m(&a)).abs() < 1e-6);
    }

    #[test]
    fn angular_distance_is_a_metric(
        az1 in 0.0f64..360.0, el1 in -90.0f64..90.0,
        az2 in 0.0f64..360.0, el2 in -90.0f64..90.0,
        az3 in 0.0f64..360.0, el3 in -90.0f64..90.0,
    ) {
        let a = AzEl::new(az1, el1);
        let b = AzEl::new(az2, el2);
        let c = AzEl::new(az3, el3);
        let ab = a.angular_distance_deg(&b);
        let ba = b.angular_distance_deg(&a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!((0.0..=180.0 + 1e-9).contains(&ab), "bounded");
        // acos(1-ε) costs ~1e-3° of numerical noise near zero.
        prop_assert!(a.angular_distance_deg(&a) < 2e-3, "identity");
        let ac = a.angular_distance_deg(&c);
        let cb = c.angular_distance_deg(&b);
        prop_assert!(ab <= ac + cb + 1e-6, "triangle inequality");
    }

    #[test]
    fn obstruction_mask_blocks_iff_some_sector_blocks(
        s1 in 0.0f64..360.0, w1 in 1.0f64..120.0, e1 in -10.0f64..45.0,
        s2 in 0.0f64..360.0, w2 in 1.0f64..120.0, e2 in -10.0f64..45.0,
        az in 0.0f64..360.0, el in -90.0f64..90.0,
    ) {
        let m = ObstructionMask::clear()
            .with_sector(s1, s1 + w1, e1)
            .with_sector(s2, s2 + w2, e2);
        let dir = AzEl::new(az, el);
        let any = m.sectors().iter().any(|s| s.blocks(&dir));
        prop_assert_eq!(m.blocks(&dir), any);
    }

    // ---------------- sim ----------------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..80)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn sim_time_arithmetic_consistent(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let (lo, hi) = (SimTime(a.min(b)), SimTime(a.max(b)));
        let d = hi - lo;
        prop_assert_eq!(lo + d, hi);
        prop_assert_eq!(hi.since(lo).as_ms(), d.as_ms());
        prop_assert_eq!(lo.since(hi).as_ms(), 0);
    }

    // ---------------- manet ----------------

    #[test]
    fn topology_connectivity_is_symmetric_and_reflexive(
        edges in prop::collection::vec((0u32..12, 0u32..12), 0..40),
    ) {
        let mut t = Topology::new();
        for i in 0..12 {
            t.add_node(PlatformId(i));
        }
        for (a, b) in edges {
            if a != b {
                t.set_link(PlatformId(a), PlatformId(b), 0.9);
            }
        }
        for i in 0..12u32 {
            prop_assert!(t.connected(PlatformId(i), PlatformId(i)));
            for j in 0..12u32 {
                prop_assert_eq!(
                    t.connected(PlatformId(i), PlatformId(j)),
                    t.connected(PlatformId(j), PlatformId(i))
                );
            }
        }
    }

    #[test]
    fn topology_link_removal_never_adds_connectivity(
        edges in prop::collection::vec((0u32..10, 0u32..10), 1..30),
        remove_idx in 0usize..30,
    ) {
        let mut t = Topology::new();
        for i in 0..10 {
            t.add_node(PlatformId(i));
        }
        let clean: Vec<(u32, u32)> =
            edges.into_iter().filter(|(a, b)| a != b).collect();
        prop_assume!(!clean.is_empty());
        for (a, b) in &clean {
            t.set_link(PlatformId(*a), PlatformId(*b), 0.9);
        }
        let before: Vec<bool> = (0..10u32)
            .flat_map(|i| (0..10u32).map(move |j| (i, j)))
            .map(|(i, j)| t.connected(PlatformId(i), PlatformId(j)))
            .collect();
        let (ra, rb) = clean[remove_idx % clean.len()];
        t.remove_link(PlatformId(ra), PlatformId(rb));
        let after: Vec<bool> = (0..10u32)
            .flat_map(|i| (0..10u32).map(move |j| (i, j)))
            .map(|(i, j)| t.connected(PlatformId(i), PlatformId(j)))
            .collect();
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(*b || !*a, "removal created connectivity");
        }
    }

    // ---------------- dataplane ----------------

    #[test]
    fn programmed_paths_always_trace(path_len in 2usize..8, version in 1u64..100) {
        let mut alloc = PrefixAllocator::loon_default();
        let mut fabric = RoutingFabric::new();
        let nodes: Vec<PlatformId> = (0..path_len as u32).map(PlatformId).collect();
        let src = alloc.prefix_for(nodes[0]);
        let dst = alloc.prefix_for(*nodes.last().expect("non-empty"));
        fabric.program_path(src, dst, &nodes, version);
        let forward = fabric.trace_flow(src, dst, nodes[0], *nodes.last().expect("non-empty"), |_, _| true);
        prop_assert_eq!(forward, Some(nodes.clone()));
        let mut rev = nodes.clone();
        rev.reverse();
        let backward =
            fabric.trace_flow(dst, src, rev[0], *rev.last().expect("non-empty"), |_, _| true);
        prop_assert_eq!(backward, Some(rev));
    }

    #[test]
    fn route_table_install_remove_roundtrip(n in 1usize..30) {
        let mut alloc = PrefixAllocator::loon_default();
        let mut fabric = RoutingFabric::new();
        let node = PlatformId(0);
        let prefixes: Vec<_> = (1..=n as u32).map(|i| alloc.prefix_for(PlatformId(i))).collect();
        let base = alloc.prefix_for(PlatformId(99));
        for p in &prefixes {
            fabric.table_mut(node).install(RouteEntry { src: base, dst: *p, next_hop: PlatformId(1) });
        }
        prop_assert_eq!(fabric.table(node).expect("exists").len(), n);
        for p in &prefixes {
            fabric.table_mut(node).remove(base, *p);
        }
        prop_assert!(fabric.table(node).expect("exists").is_empty());
    }

    // ---------------- telemetry ----------------

    #[test]
    fn percentile_within_sample_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let v = percentile(&xs, p).expect("non-empty");
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn percentile_monotone_in_p(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = percentile(&xs, p).expect("non-empty");
            prop_assert!(v >= last - 1e-9);
            last = v;
        }
    }

    #[test]
    fn mean_between_min_and_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let m = mean(&xs).expect("non-empty");
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    // ---------------- rf ----------------

    #[test]
    fn rain_attenuation_monotone(r1 in 0.1f64..100.0, r2 in 0.1f64..100.0, f in 12.0f64..100.0) {
        let (lo, hi) = (r1.min(r2), r1.max(r2));
        prop_assert!(
            tssdn_rf::rain::rain_db_per_km(f, hi) >= tssdn_rf::rain::rain_db_per_km(f, lo)
        );
    }

    #[test]
    fn fspl_monotone_in_distance(d1 in 1.0f64..1e6, d2 in 1.0f64..1e6, f in 1.0f64..100.0) {
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(
            tssdn_rf::free_space_path_loss_db(hi, f) >= tssdn_rf::free_space_path_loss_db(lo, f)
        );
    }

    #[test]
    fn antenna_gain_bounded(off in 0.0f64..180.0) {
        let p = tssdn_rf::AntennaPattern::e_band_balloon();
        let g = p.gain_dbi(off);
        prop_assert!(g <= p.boresight_gain_dbi + 1e-9);
        prop_assert!(g >= -10.0 - 1e-9);
    }

    // ---------------- planning hot path ----------------

    /// Golden-equivalence gate (solver half): on arbitrary candidate
    /// graphs — deliberately rich in utility and margin ties, shared
    /// transceivers, interference conflicts, incumbents, drains and
    /// pair penalties — the optimized incremental `Solver::solve` must
    /// return a `TopologyPlan` bit-identical to the retained naive
    /// reference: same demand links *in the same selection order*,
    /// same redundant links, same routes, same unsatisfied list, same
    /// kept-link count.
    #[test]
    fn optimized_solver_matches_naive_reference(
        raw in prop::collection::vec(
            ((0u32..10, 0u8..3, 0u32..10, 0u8..3), (0u8..4, 0u8..2, prop::bool::ANY, 0u8..24)),
            1..40,
        ),
        prev_mask in prop::collection::vec(prop::bool::ANY, 40..41),
        req_mask in prop::collection::vec(prop::bool::ANY, 7..8),
        drain in prop::option::of(0u32..10),
        penalty_pair in prop::option::of((0u32..10, 0u32..10)),
    ) {
        let mut links = Vec::new();
        for ((pa, aa, pb, ab), (margin_i, band, marginal, az)) in raw {
            let (ida, gsa) = plat(pa);
            let (idb, gsb) = plat(pb);
            if ida == idb || (gsa && gsb) {
                continue;
            }
            let ta = TransceiverId::new(ida, aa);
            let tb = TransceiverId::new(idb, ab);
            // Coarse az/margin grids maximize ties so the test
            // exercises every tie-break path.
            let point_ta = AzEl::new(az as f64 * 15.0, 0.0);
            let point_tb = AzEl::new((az as f64 * 15.0 + 180.0) % 360.0, 0.0);
            let (a, b, pointing_a, pointing_b) = if ta < tb {
                (ta, tb, point_ta, point_tb)
            } else {
                (tb, ta, point_tb, point_ta)
            };
            links.push(CandidateLink {
                a,
                b,
                kind: if gsa || gsb { LinkKind::B2G } else { LinkKind::B2B },
                band,
                bitrate_bps: 400_000_000,
                margin_db: [0.0, 5.0, 10.0, -1.0][margin_i as usize],
                quality: if marginal { LinkQuality::Marginal } else { LinkQuality::Acceptable },
                pointing_a,
                pointing_b,
                range_m: 250_000.0,
            });
        }
        let graph = CandidateGraph { at: SimTime::ZERO, links };
        let previous: BTreeSet<(TransceiverId, TransceiverId)> = graph
            .links
            .iter()
            .enumerate()
            .filter(|(i, _)| prev_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, l)| l.key())
            .collect();
        let requests: Vec<BackhaulRequest> = (0..7u32)
            .filter(|i| req_mask[*i as usize])
            .map(|i| BackhaulRequest {
                node: PlatformId(i),
                ec: PlatformId(200),
                min_bitrate_bps: 50_000_000,
                redundancy_group: None,
            })
            .collect();
        let mut drains = DrainRegistry::new();
        if let Some(d) = drain {
            drains.request(plat(d).0, DrainMode::Opportunistic, SimTime::ZERO, None);
        }
        let mut solver = Solver::default();
        if let Some((x, y)) = penalty_pair {
            let (px, _) = plat(x);
            let (py, _) = plat(y);
            if px != py {
                solver.pair_penalties.insert((px.min(py), px.max(py)), 1.5);
            }
        }
        let gw = |ec: PlatformId| -> Vec<PlatformId> {
            if ec == PlatformId(200) {
                vec![PlatformId(100), PlatformId(101), PlatformId(102)]
            } else {
                vec![]
            }
        };
        let fast = solver.solve(&graph, &requests, &gw, &previous, &drains, SimTime::ZERO);
        let slow = solve_reference(&solver, &graph, &requests, &gw, &previous, &drains, SimTime::ZERO);
        prop_assert_eq!(fast, slow);
    }
}
