//! Failure injection: the network under infrastructure loss.
//!
//! The paper's ground sites needed "reliable power and network
//! connectivity" (§2.2) precisely because their loss is severe: a
//! dark site takes its B2G links, its MANET gateway, and its EC
//! tunnels with it. These tests inject a site outage mid-day and check
//! that (a) the damage is what physics says it must be, and (b) the
//! TS-SDN reroutes around it using the surviving sites.

use tssdn_core::{Orchestrator, OrchestratorConfig};
use tssdn_sim::{PlatformId, SimDuration, SimTime};
use tssdn_telemetry::Layer;

fn world(seed: u64, n: usize) -> Orchestrator {
    let mut cfg = OrchestratorConfig::kenya(n, seed);
    cfg.fleet.spawn_radius_m = 220_000.0;
    Orchestrator::new(cfg)
}

/// Links touching `gs` must die within the fade tolerance of the
/// outage; other sites' links survive.
///
/// The precondition (some established link actually touches the dark
/// site) is geometry-dependent, so the test walks seeds until it
/// finds a world where it holds instead of silently passing when it
/// doesn't.
#[test]
fn gs_outage_kills_only_its_links() {
    let gs0 = PlatformId(10);
    let mut tested = false;
    for seed in 301..311u64 {
        let mut o = world(seed, 10);
        o.run_until(SimTime::from_hours(11));
        let touching_before = o
            .intents
            .established()
            .filter(|i| i.link.a.platform == gs0 || i.link.b.platform == gs0)
            .count();
        if touching_before == 0 {
            continue; // geometry didn't use gs0 this seed; next one
        }
        tested = true;
        let others_before = o
            .intents
            .established()
            .filter(|i| i.link.a.platform != gs0 && i.link.b.platform != gs0)
            .count();
        o.set_gs_outage(gs0, true);
        o.run_until(o.now() + SimDuration::from_mins(2));
        let touching_after = o
            .intents
            .established()
            .filter(|i| i.link.a.platform == gs0 || i.link.b.platform == gs0)
            .count();
        assert_eq!(touching_after, 0, "seed {seed}: dark site keeps no links");
        // The rest of the mesh isn't nuked. Two minutes of ordinary
        // churn on an unrelated link is possible, but losing more than
        // half the surviving mesh would mean the outage cascaded.
        let others_after = o
            .intents
            .established()
            .filter(|i| i.link.a.platform != gs0 && i.link.b.platform != gs0)
            .count();
        assert!(
            others_after >= others_before.div_ceil(2),
            "seed {seed}: collateral damage bounded: {others_before} -> {others_after}"
        );
        break;
    }
    assert!(tested, "no seed in 301..311 produced a link touching gs0");
}

/// With two surviving sites, the controller re-establishes data-plane
/// availability within tens of minutes.
#[test]
fn controller_reroutes_around_a_dark_site() {
    let mut o = world(302, 12);
    o.run_until(SimTime::from_hours(11));
    let gs0 = PlatformId(12);
    o.set_gs_outage(gs0, true);
    // Give the controller time to react (detection, re-solve,
    // re-establishment through the surviving sites).
    o.run_until(o.now() + SimDuration::from_hours(1));
    let up = (0..12u32)
        .filter(|b| {
            o.data_plane_status(PlatformId(*b)) == tssdn_core::orchestrator::DataPlaneStatus::Up
        })
        .count();
    assert!(
        up > 0,
        "service survives on the remaining gateways: {up}/12 up"
    );
    // No active path may use the dark site.
    for b in 0..12u32 {
        if let Some(p) = o.active_path(PlatformId(b)) {
            assert!(!p.contains(&gs0), "path through dark site: {p:?}");
        }
    }
}

/// Restoration: when the site comes back, it rejoins the mesh.
#[test]
fn site_restoration_rejoins_the_mesh() {
    let mut o = world(303, 10);
    o.run_until(SimTime::from_hours(10));
    let gs0 = PlatformId(10);
    o.set_gs_outage(gs0, true);
    o.run_until(o.now() + SimDuration::from_mins(30));
    o.set_gs_outage(gs0, false);
    o.run_until(o.now() + SimDuration::from_hours(2));
    let touching = o
        .intents
        .established()
        .filter(|i| i.link.a.platform == gs0 || i.link.b.platform == gs0)
        .count();
    // Geometry permitting, the solver re-tasks the recovered site; at
    // minimum the site must again be a valid gateway.
    assert!(
        touching > 0 || o.tunnels.gateways_to(o.ec_ids()[0]).contains(&gs0),
        "restored site usable again"
    );
}

/// Total blackout: all sites dark means zero control & data plane for
/// balloons (satcom keeps command reachability, but no mesh egress),
/// and full recovery after power returns.
#[test]
fn total_gateway_blackout_and_recovery() {
    let mut o = world(304, 8);
    o.run_until(SimTime::from_hours(11));
    for g in 8..11u32 {
        o.set_gs_outage(PlatformId(g), true);
    }
    o.run_until(o.now() + SimDuration::from_mins(20));
    for b in 0..8u32 {
        assert_ne!(
            o.data_plane_status(PlatformId(b)),
            tssdn_core::orchestrator::DataPlaneStatus::Up,
            "no gateways ⇒ no data plane"
        );
        assert!(
            !o.cdpi.inband.is_reachable(PlatformId(b), o.now()),
            "no gateways ⇒ no in-band control"
        );
    }
    // Power restored: the day's mesh rebuilds.
    for g in 8..11u32 {
        o.set_gs_outage(PlatformId(g), false);
    }
    let before = o.availability.overall(Layer::DataPlane);
    o.run_until(o.now() + SimDuration::from_hours(2));
    let up = (0..8u32)
        .filter(|b| {
            o.data_plane_status(PlatformId(*b)) == tssdn_core::orchestrator::DataPlaneStatus::Up
        })
        .count();
    assert!(
        up > 0,
        "service recovers after restoration ({before:?} avail before)"
    );
}
