//! Property-based tests on the protocol state machines: link
//! acquisition lifecycle and CDPI frontend invariants under arbitrary
//! timing and margin traces.

use proptest::prelude::*;
use tssdn_cpl::{CdpiConfig, CdpiEvent, CdpiFrontend, CommandBody};
use tssdn_link::{AcqConfig, LinkPhase, LinkStateMachine, LinkTransition, TransceiverId};
use tssdn_sim::{PlatformId, RngStreams, SimDuration, SimTime};

/// Drive a machine over a margin trace sampled every second; return
/// the transition log.
fn drive(
    m: &mut LinkStateMachine,
    margins: &[Option<i32>],
    seed: u64,
) -> Vec<(u64, LinkTransition)> {
    let mut rng = RngStreams::new(seed).stream("prop-acq");
    let mut out = Vec::new();
    for (s, margin) in margins.iter().enumerate() {
        let t = SimTime::from_secs(s as u64);
        if let Some(tr) = m.poll(t, margin.map(|x| x as f64), &mut rng) {
            out.push((s as u64, tr));
        }
    }
    out
}

proptest! {
    /// The machine's transition log always follows the legal grammar:
    /// EnactStarted → AttemptStarted → (AttemptFailed* →) Established?
    /// → (Failed | Ended)?, and nothing after a terminal transition.
    #[test]
    fn machine_transition_grammar(
        margins in prop::collection::vec(prop::option::of(-20i32..20), 30..400),
        enact_s in 0u64..50,
        slew in 0.0f64..20.0,
        seed in 0u64..5000,
    ) {
        let cfg = AcqConfig::loon_default();
        let mut m = LinkStateMachine::new(SimTime::from_secs(enact_s), slew, cfg);
        let log = drive(&mut m, &margins, seed);

        let mut state = 0; // 0 pending, 1 enacting, 2 searching, 3 up, 4 terminal
        for (_, tr) in &log {
            match tr {
                LinkTransition::EnactStarted { .. } => {
                    prop_assert_eq!(state, 0);
                    state = 1;
                }
                LinkTransition::AttemptStarted { .. } => {
                    prop_assert_eq!(state, 1);
                    state = 2;
                }
                LinkTransition::AttemptFailed { .. } => {
                    prop_assert_eq!(state, 2);
                }
                LinkTransition::Established { .. } => {
                    prop_assert_eq!(state, 2);
                    state = 3;
                }
                LinkTransition::Failed { .. } => {
                    prop_assert!(state <= 2, "Failed only before establishment");
                    state = 4;
                }
                LinkTransition::Ended { .. } => {
                    prop_assert!(state == 3 || state <= 2, "Ended comes from up or withdraw");
                    state = 4;
                }
            }
            prop_assert!(state != 5);
        }
        // Terminal flag agrees with the log.
        let saw_terminal = log.iter().any(|(_, t)| {
            matches!(t, LinkTransition::Failed { .. } | LinkTransition::Ended { .. })
        });
        prop_assert_eq!(m.is_terminal(), saw_terminal);
    }

    /// Nothing ever happens before the TTE.
    #[test]
    fn machine_respects_tte(
        margins in prop::collection::vec(prop::option::of(-20i32..20), 30..200),
        enact_s in 10u64..150,
        seed in 0u64..5000,
    ) {
        let cfg = AcqConfig::loon_default();
        let mut m = LinkStateMachine::new(SimTime::from_secs(enact_s), 0.0, cfg);
        let log = drive(&mut m, &margins, seed);
        if let Some((t, _)) = log.first() {
            prop_assert!(*t >= enact_s, "first transition at {t} before TTE {enact_s}");
        }
    }

    /// A machine polled with permanently-None margin can never
    /// establish.
    #[test]
    fn no_margin_never_establishes(
        len in 50usize..300,
        seed in 0u64..5000,
    ) {
        let cfg = AcqConfig::loon_default();
        let mut m = LinkStateMachine::new(SimTime::ZERO, 0.0, cfg);
        let margins = vec![None; len];
        let log = drive(&mut m, &margins, seed);
        let established =
            log.iter().any(|(_, t)| matches!(t, LinkTransition::Established { .. }));
        prop_assert!(!established);
        prop_assert!(!m.is_established());
    }

    /// Withdrawal always terminates the machine, from any phase.
    #[test]
    fn withdrawal_always_terminates(
        margins in prop::collection::vec(prop::option::of(-20i32..20), 10..150),
        withdraw_at in 0usize..150,
        seed in 0u64..5000,
    ) {
        let cfg = AcqConfig::loon_default();
        let mut m = LinkStateMachine::new(SimTime::ZERO, 2.0, cfg);
        let mut rng = RngStreams::new(seed).stream("prop-acq");
        for (s, margin) in margins.iter().enumerate() {
            if s == withdraw_at.min(margins.len() - 1) {
                m.withdraw();
            }
            m.poll(SimTime::from_secs(s as u64), margin.map(|x| x as f64), &mut rng);
        }
        // One extra poll to flush the withdrawal.
        m.poll(SimTime::from_secs(margins.len() as u64), None, &mut rng);
        prop_assert!(m.is_terminal());
        let still_up = matches!(m.phase(), LinkPhase::Established { .. });
        prop_assert!(!still_up);
    }

    /// CDPI: the TTE is always ≥ now, and in-band reachability of all
    /// recipients yields exactly the 3-second TTE.
    #[test]
    fn cdpi_tte_rules(
        now_s in 0u64..10_000,
        reachable in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let streams = RngStreams::new(seed);
        let mut f = CdpiFrontend::new(CdpiConfig::default(), &streams);
        let now = SimTime::from_secs(now_s);
        if reachable {
            f.inband.set_reachable(PlatformId(1), 2, now);
        }
        let (_, tte) = f.submit_intent(
            vec![(
                PlatformId(1),
                CommandBody::EstablishLink {
                    intent_id: 0,
                    local: TransceiverId::new(PlatformId(1), 0),
                    peer: TransceiverId::new(PlatformId(2), 0),
                },
            )],
            now,
        );
        prop_assert!(tte >= now);
        if reachable {
            prop_assert_eq!(tte, now + SimDuration::from_secs(3));
        } else {
            prop_assert_eq!(tte, now + SimDuration::from_secs(186));
        }
    }

    /// CDPI: every confirmed intent's record has confirmed ≥ submitted,
    /// and each intent is confirmed at most once, regardless of how
    /// reachability flaps.
    #[test]
    fn cdpi_confirmation_uniqueness(
        flaps in prop::collection::vec(proptest::bool::ANY, 10..80),
        seed in 0u64..1000,
    ) {
        let streams = RngStreams::new(seed);
        let mut f = CdpiFrontend::new(CdpiConfig::default(), &streams);
        let mut confirmed_ids = Vec::new();
        let mut next_intent = 0u64;
        for (s, up) in flaps.iter().enumerate() {
            let now = SimTime::from_secs(s as u64 * 5);
            if *up {
                for e in f.node_connected_inband(PlatformId(1), 2, now) {
                    if let CdpiEvent::IntentConfirmed { intent_id, .. } = e {
                        confirmed_ids.push(intent_id);
                    }
                }
            } else {
                f.node_disconnected_inband(PlatformId(1));
            }
            if s % 7 == 0 {
                next_intent += 1;
                f.submit_intent(
                    vec![(
                        PlatformId(1),
                        CommandBody::EstablishLink {
                            intent_id: next_intent,
                            local: TransceiverId::new(PlatformId(1), 0),
                            peer: TransceiverId::new(PlatformId(2), 0),
                        },
                    )],
                    now,
                );
            }
            for e in f.poll(now) {
                if let CdpiEvent::IntentConfirmed { intent_id, .. } = e {
                    confirmed_ids.push(intent_id);
                }
            }
        }
        let mut sorted = confirmed_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), confirmed_ids.len(), "no double confirmation");
        for r in f.records() {
            prop_assert!(r.confirmed >= r.submitted);
        }
    }
}
