//! Property-based tests for the scenario layer: the `ScenarioSpec`
//! JSON codec round-trips losslessly over arbitrary specs (floats to
//! the bit, every enum arm, weird names), strict parsing rejects
//! unknown/invalid input loudly, and building + running the same spec
//! twice renders byte-identical scorecard JSON.

use proptest::prelude::*;
use tssdn_scenario::{
    run_scenario, DemandSpec, FaultsSpec, FleetSpec, Geography, KindSpec, ScenarioSpec, SurgeSpec,
    TrafficSpec, WeatherRegime, WeatherSpec, WindowSpec,
};

// ---------------------------------------------------------------- //
// Lossless serde round trip                                        //
// ---------------------------------------------------------------- //

/// Build one directed-fault window from raw generated parts.
fn window_from_parts(
    (start_min, duration, kind_sel, id, lead): (u64, Option<u64>, u8, u32, u64),
    (p, q, r): (f64, f64, f64),
) -> WindowSpec {
    let kind = match kind_sel {
        0 => KindSpec::GsOutage { site: id },
        1 => KindSpec::SatcomBrownout {
            latency_scale: 1.0 + q,
            max_drop_prob: p,
        },
        2 => KindSpec::InbandPartition {
            nodes: vec![id, id + 1],
        },
        3 => KindSpec::TransceiverFault {
            platform: id,
            index: (id % 3) as u8,
            mode: if lead % 2 == 0 {
                tssdn_scenario::FaultModeSpec::GimbalStuck
            } else {
                tssdn_scenario::FaultModeSpec::RadioReboot
            },
        },
        4 => KindSpec::BalloonLoss { balloon: id },
        5 => KindSpec::BalloonLossWarned {
            balloon: id,
            lead_mins: 1 + lead,
        },
        _ => KindSpec::CommandChaos {
            corrupt: p,
            duplicate: r,
            reorder: p * r,
        },
    };
    WindowSpec {
        start_min,
        duration_mins: duration.map(|d| 1 + d),
        kind,
    }
}

proptest! {
    /// Encode → strict decode returns an equal spec, for arbitrary
    /// specs across every enum arm. Float fields must survive to the
    /// bit (the codec uses shortest-round-trip formatting), u64 seeds
    /// must not widen through f64.
    #[test]
    fn spec_json_round_trips_losslessly(
        core in (1u64..u64::MAX, 1u64..72, 1u32..24, 10.0f64..600.0, 0u8..3),
        demand in (
            100u64..200_000,
            1u32..16,
            1.0f64..20_000.0,
            0u64..2_000_000,
            prop::option::of((0u64..40, 1u64..12, 0.0f64..8.0)),
        ),
        weather in (prop::bool::ANY, 0.0f64..3.0, 1u64..5, prop::bool::ANY),
        fault_sel in (0u8..3, 1u32..10, 0u64..12, 13u64..25, prop::bool::ANY),
        windows in prop::collection::vec(
            (
                (0u64..2000, prop::option::of(0u64..240), 0u8..7, 0u32..16, 0u64..60),
                (0.0f64..1.0, 0.0f64..9.0, 0.0f64..1.0),
            ),
            0..5,
        ),
        traffic in (
            prop::bool::ANY,
            prop::bool::ANY,
            prop::bool::ANY,
            1u64..u64::MAX,
            1u64..240,
            prop::bool::ANY,
        ),
    ) {
        let (seed, duration_hours, n_balloons, spawn_radius_km, name_sel) = core;
        let (users, flows, bps, control_bps, surge) = demand;
        let (stormy, intensity, days, gauges) = weather;
        let (faults_kind, expected, earliest, latest, warned) = fault_sel;

        let spec = ScenarioSpec {
            name: match name_sel {
                0 => "prop".into(),
                1 => "we\"ird\\name\n".into(),
                _ => "uni≈code🎈".into(),
            },
            seed,
            duration_hours,
            multipath: gauges ^ warned,
            fleet: FleetSpec {
                geography: Geography::Kenya,
                n_balloons,
                spawn_radius_km,
            },
            demand: DemandSpec {
                users_per_site: users,
                flows_per_site: flows,
                busy_hour_bps_per_user: bps,
                control_bps_per_site: control_bps,
                surge: surge.map(|(start_hour, dur, mult)| SurgeSpec {
                    start_hour,
                    duration_hours: dur,
                    multiplier: mult,
                }),
            },
            weather: WeatherSpec {
                regime: if stormy {
                    WeatherRegime::Stormy { intensity, days }
                } else {
                    WeatherRegime::Clear
                },
                gauges,
            },
            faults: match faults_kind {
                0 => FaultsSpec::Quiet,
                1 => FaultsSpec::Seeded {
                    expected,
                    earliest_hour: earliest,
                    latest_hour: latest,
                    warned_loss: warned,
                },
                _ => FaultsSpec::Directed(
                    windows.into_iter().map(|(a, b)| window_from_parts(a, b)).collect(),
                ),
            },
            traffic: TrafficSpec {
                enabled: traffic.0,
                store_forward: traffic.1,
                custody: traffic.2,
                buffer_max_bytes: traffic.3,
                buffer_max_age_mins: traffic.4,
                hierarchical: traffic.5,
            },
        };
        prop_assert!(spec.validate().is_ok(), "generated spec invalid: {:?}", spec.validate());

        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text)
            .map_err(|e| TestCaseError::Fail(format!("decode failed: {e}\n{text}")))?;
        prop_assert_eq!(&back, &spec);
        // And the rendering itself is a fixpoint: encode(decode(x)) == x.
        prop_assert_eq!(back.to_json(), text);
    }
}

// ---------------------------------------------------------------- //
// Strict parsing: invalid specs are rejected loudly                //
// ---------------------------------------------------------------- //

fn baseline_json() -> String {
    tssdn_scenario::chaos_soak_spec("strict", 7).to_json()
}

#[test]
fn unknown_fields_are_rejected_at_every_level() {
    let good = baseline_json();
    assert!(ScenarioSpec::from_json(&good).is_ok());

    // Top level.
    let top = good.replacen("\"seed\":", "\"sneed\": 1,\n  \"seed\":", 1);
    let err = ScenarioSpec::from_json(&top).expect_err("unknown top-level field");
    assert!(err.contains("unknown field"), "{err}");

    // Nested object.
    let nested = good.replacen(
        "\"n_balloons\":",
        "\"n_ballons\": 9,\n    \"n_balloons\":",
        1,
    );
    let err = ScenarioSpec::from_json(&nested).expect_err("unknown nested field");
    assert!(err.contains("unknown field"), "{err}");
}

#[test]
fn missing_and_mistyped_fields_are_rejected() {
    let good = baseline_json();

    let missing = good.replacen("  \"multipath\": false,\n", "", 1);
    assert!(ScenarioSpec::from_json(&missing).is_err(), "missing field");

    let mistyped = good.replacen("\"seed\": 7", "\"seed\": \"7\"", 1);
    let err = ScenarioSpec::from_json(&mistyped).expect_err("string seed");
    assert!(err.contains("seed"), "{err}");

    let negative = good.replacen("\"seed\": 7", "\"seed\": -7", 1);
    assert!(ScenarioSpec::from_json(&negative).is_err(), "negative u64");
}

#[test]
fn duplicate_keys_are_rejected() {
    let dup = baseline_json().replacen("\"seed\": 7,", "\"seed\": 7,\n  \"seed\": 8,", 1);
    let err = ScenarioSpec::from_json(&dup).expect_err("duplicate key");
    assert!(err.contains("duplicate"), "{err}");
}

#[test]
fn out_of_range_values_are_rejected_by_validate() {
    let mut spec = tssdn_scenario::chaos_soak_spec("strict", 7);
    spec.fleet.spawn_radius_km = 0.0;
    assert!(spec.validate().is_err(), "zero spawn radius");

    let mut spec = tssdn_scenario::chaos_soak_spec("strict", 7);
    spec.faults = FaultsSpec::Seeded {
        expected: 3,
        earliest_hour: 10,
        latest_hour: 10,
        warned_loss: false,
    };
    assert!(spec.validate().is_err(), "empty fault window span");

    let mut spec = tssdn_scenario::chaos_soak_spec("strict", 7);
    spec.faults = FaultsSpec::Directed(vec![WindowSpec {
        start_min: 0,
        duration_mins: Some(5),
        kind: KindSpec::SatcomBrownout {
            latency_scale: 2.0,
            max_drop_prob: 1.5,
        },
    }]);
    let err = spec.validate().expect_err("probability > 1");
    assert!(err.contains("probability"), "{err}");

    // And the same violations arrive through the JSON path too.
    let text = spec.to_json();
    assert!(ScenarioSpec::from_json(&text).is_err());
}

#[test]
fn unknown_enum_tags_are_rejected() {
    let bad_geo = baseline_json().replacen("\"kenya\"", "\"atlantis\"", 1);
    let err = ScenarioSpec::from_json(&bad_geo).expect_err("unknown geography");
    assert!(err.contains("atlantis"), "{err}");

    let bad_regime = baseline_json().replacen("\"regime\": \"clear\"", "\"regime\": \"hail\"", 1);
    let err = ScenarioSpec::from_json(&bad_regime).expect_err("unknown regime");
    assert!(err.contains("hail"), "{err}");
}

// ---------------------------------------------------------------- //
// Build + run determinism: scorecard JSON verbatim                 //
// ---------------------------------------------------------------- //

/// A deliberately small world so the double-run stays cheap.
fn tiny_spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: "tiny".into(),
        seed,
        duration_hours: 11,
        multipath: true,
        fleet: FleetSpec {
            geography: Geography::Kenya,
            n_balloons: 3,
            spawn_radius_km: 120.0,
        },
        demand: DemandSpec::default(),
        weather: WeatherSpec {
            regime: WeatherRegime::Clear,
            gauges: false,
        },
        faults: FaultsSpec::Quiet,
        traffic: TrafficSpec::default(),
    }
}

/// Building and running the same spec twice — two worlds from
/// scratch — must render byte-identical scorecard JSON, including a
/// directed custody scenario whose counters depend on the full
/// store-and-forward machinery.
#[test]
fn running_the_same_spec_twice_is_byte_identical() {
    let mut custody = tiny_spec(23);
    custody.name = "tiny_custody".into();
    custody.faults = FaultsSpec::Directed(vec![
        WindowSpec {
            start_min: 570,
            duration_mins: Some(20),
            kind: KindSpec::GsOutage { site: 3 },
        },
        WindowSpec {
            start_min: 570,
            duration_mins: Some(20),
            kind: KindSpec::GsOutage { site: 4 },
        },
        WindowSpec {
            start_min: 570,
            duration_mins: Some(20),
            kind: KindSpec::GsOutage { site: 5 },
        },
        WindowSpec {
            start_min: 585,
            duration_mins: Some(30),
            kind: KindSpec::BalloonLossWarned {
                balloon: 0,
                lead_mins: 8,
            },
        },
    ]);

    for spec in [tiny_spec(7), custody] {
        let a = run_scenario(&spec).to_json();
        let b = run_scenario(&spec).to_json();
        assert_eq!(a, b, "{}: scorecard JSON diverged between runs", spec.name);
        // The JSON really carries the run: sanity-check a couple of
        // substantive rows made it out.
        assert!(a.contains("\"offered_bits\""), "{a}");
        assert!(
            a.contains(&format!("\"seed\": {}", spec.seed)),
            "seed row present"
        );
    }
}
