//! End-to-end integration: the whole stack (fleet → RF truth → link
//! machines → MANET → hybrid control plane → solver → data plane)
//! running closed-loop, checked for cross-layer invariants.

use tssdn_core::{Orchestrator, OrchestratorConfig, WeatherModelKind};
use tssdn_geo::GeoPoint;
use tssdn_link::LinkKind;
use tssdn_rf::{RainCell, SyntheticWeather};
use tssdn_sim::{PlatformId, SimTime};
use tssdn_telemetry::Layer;

fn stormy(n: usize, seed: u64) -> Orchestrator {
    let mut cfg = OrchestratorConfig::kenya(n, seed);
    cfg.fleet.spawn_radius_m = 230_000.0;
    let mut w = SyntheticWeather::new();
    w.add_cell(RainCell {
        center: GeoPoint::new(-1.2, 36.6, 0.0),
        vel_east_mps: 6.0,
        vel_north_mps: 1.0,
        radius_m: 15_000.0,
        peak_rain_mm_h: 35.0,
        start_ms: SimTime::from_hours(13).as_ms(),
        end_ms: SimTime::from_hours(17).as_ms(),
    });
    cfg.weather_truth = w;
    cfg.weather_model = WeatherModelKind::WithGauges {
        position_error_m: 20_000.0,
        timing_error_ms: 30 * 60 * 1000,
        intensity_scale: 0.8,
    };
    Orchestrator::new(cfg)
}

#[test]
fn full_day_is_deterministic_across_instances() {
    let mut a = stormy(8, 11);
    let mut b = stormy(8, 11);
    a.run_until(SimTime::from_hours(15));
    b.run_until(SimTime::from_hours(15));
    assert_eq!(a.intents.all().count(), b.intents.all().count());
    assert_eq!(a.ledger.records().len(), b.ledger.records().len());
    assert_eq!(a.cdpi.records().len(), b.cdpi.records().len());
    assert_eq!(
        a.availability.overall(Layer::DataPlane),
        b.availability.overall(Layer::DataPlane)
    );
    assert_eq!(a.recovery.samples().len(), b.recovery.samples().len());
}

#[test]
fn different_seeds_diverge() {
    let mut a = stormy(8, 11);
    let mut b = stormy(8, 12);
    a.run_until(SimTime::from_hours(12));
    b.run_until(SimTime::from_hours(12));
    // Same configuration, different stochastic world: some observable
    // difference must exist.
    assert!(
        a.ledger.records().len() != b.ledger.records().len()
            || a.cdpi.records().len() != b.cdpi.records().len(),
        "seeds must matter"
    );
}

#[test]
fn availability_layering_holds() {
    let mut o = stormy(10, 21);
    o.run_until(SimTime::from_hours(22));
    let control = o.availability.overall(Layer::ControlPlane).expect("probed");
    let data = o.availability.overall(Layer::DataPlane).expect("probed");
    // Data plane depends on the control plane having programmed it:
    // its availability cannot exceed control's in aggregate.
    assert!(
        data <= control + 0.02,
        "data ({data:.3}) must not exceed control ({control:.3})"
    );
}

#[test]
fn ledger_records_are_internally_consistent() {
    let mut o = stormy(10, 31);
    o.run_until(SimTime::from_hours(20));
    for r in o.ledger.records() {
        if let Some(est) = r.established {
            assert!(est >= r.created, "establishment after creation");
            assert!(r.attempts >= 1, "established links consumed an attempt");
            if let Some(end) = r.ended {
                assert!(end >= est, "end after establishment");
            }
        }
        if r.ended.is_some() {
            assert!(r.end_reason.is_some(), "terminal records carry a reason");
        }
    }
    // Every intent in the store maps back to plausible ledger volume.
    let est_intents = o
        .intents
        .all()
        .filter(|i| {
            matches!(
                i.state,
                tssdn_core::LinkIntentState::Established { .. }
                    | tssdn_core::LinkIntentState::Ended { .. }
                    | tssdn_core::LinkIntentState::WithdrawRequested { .. }
            )
        })
        .count();
    assert!(o.ledger.records().len() <= o.intents.all().count());
    assert!(est_intents > 0, "some intents progressed");
}

#[test]
fn nightly_power_down_kills_all_links_and_probes_stay_eligible_aware() {
    let mut o = stormy(8, 41);
    o.run_until(SimTime::from_hours(12));
    assert!(o.intents.established().count() > 0, "mesh up at noon");
    o.run_until(SimTime::from_hours(27));
    assert_eq!(o.intents.established().count(), 0, "mesh gone at 03:00");
    // All balloons dark.
    for b in 0..8 {
        assert!(!o.fleet().payload_powered(PlatformId(b)));
    }
}

#[test]
fn storms_hurt_b2g_more_than_b2b() {
    let mut o = stormy(12, 51);
    o.run_until(SimTime::from_hours(22));
    let b2g = o.ledger.stats(LinkKind::B2G);
    let b2b = o.ledger.stats(LinkKind::B2B);
    assert!(b2g.intents > 0 && b2b.intents > 0);
    let (Some(mg), Some(mb)) = (b2g.median_lifetime_s(), b2b.median_lifetime_s()) else {
        panic!("both kinds produced completed links");
    };
    assert!(mb > mg, "B2B median life {mb} must exceed B2G {mg}");
    assert!(
        b2g.unexpected_end_rate() >= b2b.unexpected_end_rate(),
        "B2G ends unexpectedly at least as often"
    );
}

#[test]
fn side_channel_and_acks_confirm_most_enactments() {
    let mut o = stormy(8, 61);
    o.run_until(SimTime::from_hours(14));
    let confirmed = o.cdpi.records().len();
    assert!(confirmed > 20, "enactments confirmed: {confirmed}");
    // Some confirmations must have used satcom (the daily bootstrap).
    assert!(
        o.cdpi.records().iter().any(|r| r.used_satcom),
        "bootstrap rode satcom"
    );
    // And in steady state, in-band dominates.
    let inband = o.cdpi.records().iter().filter(|r| !r.used_satcom).count();
    assert!(
        inband * 2 > confirmed,
        "in-band dominates steady state: {inband}/{confirmed}"
    );
}

#[test]
fn obstruction_detection_full_loop() {
    let mut o = stormy(10, 71);
    let gs0 = PlatformId(10);
    o.run_until(SimTime::from_hours(12));
    o.add_true_obstruction(gs0, 90.0, 130.0, 14.0, 12.0);
    o.run_until(SimTime::from_hours(22));
    // The windowed detector must not fire for sectors that never
    // deteriorated; if it fires, findings must lie in 70–150°.
    let findings = o
        .validator
        .find_new_obstructions(gs0, 20.0, 6.0, 8, SimTime::from_hours(12));
    for f in &findings {
        assert!(
            f.az_end_deg > 90.0 - 20.0 && f.az_start_deg < 130.0 + 20.0,
            "finding outside the construction zone: {f:?}"
        );
    }
}
