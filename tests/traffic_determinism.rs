//! Traffic-engine determinism: seeded goodput runs are bit-identical
//! across allocator worker counts and across reruns — the same
//! contract style as `golden_determinism`, extended to the E17
//! subsystem.
//!
//! Four contracts:
//!
//! * **Arm parity** — both allocator arms (hierarchical site×class
//!   aggregation, the default, and the flat per-flow fill) honor the
//!   contracts below independently.
//! * **Worker invisibility** — the max-min allocator fans its scans
//!   across scoped workers; integer arithmetic plus chunk-ordered
//!   merges mean `workers = 1` and `workers = 8` (and auto) produce
//!   byte-identical goodput digests over a full orchestrator run.
//! * **Repeatability** — two identical seeded chaos-off runs produce
//!   byte-identical traffic digests.
//! * **Inertness** — enabling the traffic engine does not perturb the
//!   rest of the seeded world: the plan digest with traffic on equals
//!   the plan digest with traffic off, bit for bit.

use tssdn_core::{Orchestrator, OrchestratorConfig, TrafficConfig};
use tssdn_sim::{PlatformId, SimDuration, SimTime};

const N_BALLOONS: usize = 5;

fn world(seed: u64, traffic_workers: Option<usize>) -> Orchestrator {
    world_with(seed, traffic_workers, true)
}

fn world_with(seed: u64, traffic_workers: Option<usize>, hierarchical: bool) -> Orchestrator {
    let mut cfg = OrchestratorConfig::kenya(N_BALLOONS, seed);
    cfg.fleet.spawn_radius_m = 150_000.0;
    cfg.tick = SimDuration::from_secs(10);
    cfg.solve_interval = SimDuration::from_mins(5);
    cfg.probe_interval = SimDuration::from_secs(30);
    cfg.traffic = traffic_workers.map(|workers| TrafficConfig {
        workers,
        hierarchical,
        ..TrafficConfig::default()
    });
    Orchestrator::new(cfg)
}

/// Run one simulated day, appending an hourly traffic checkpoint: the
/// exact bit totals, per-site events, and demand-digest weights.
/// `traffic_digest` runs the default (hierarchical, aggregation-on)
/// engine; `traffic_digest_with` picks the arm.
fn traffic_digest(seed: u64, workers: usize) -> String {
    traffic_digest_with(seed, workers, true)
}

fn traffic_digest_with(seed: u64, workers: usize, hierarchical: bool) -> String {
    let mut o = world_with(seed, Some(workers), hierarchical);
    let end = SimTime::from_hours(24);
    let mut digest = String::new();
    while o.now() < end {
        o.run_until((o.now() + SimDuration::from_hours(1)).min(end));
        let e = o.traffic().expect("traffic enabled");
        let s = e.series();
        digest.push_str(&format!(
            "{} offered={} delivered={} disruptions={} reroutes={}\n",
            o.now(),
            s.offered_bits(),
            s.delivered_bits(),
            s.total_disruptions(),
            s.total_reroutes(),
        ));
        for b in (0..N_BALLOONS as u32).map(PlatformId) {
            digest.push_str(&format!(
                "  {b} {:?} {:?}\n",
                e.demand_weight_bps(b),
                s.site_events(b),
            ));
        }
    }
    digest
}

/// Hourly plan digest (the golden_determinism checkpoint format) for a
/// one-day run with traffic on or off.
fn plan_digest(seed: u64, traffic: bool) -> String {
    let mut o = world(seed, if traffic { Some(1) } else { None });
    let end = SimTime::from_hours(24);
    let mut digest = String::new();
    while o.now() < end {
        o.run_until((o.now() + SimDuration::from_hours(1)).min(end));
        digest.push_str(&format!("{} {:?}\n", o.now(), o.last_plan));
    }
    digest
}

/// Allocator worker count must be bit-invisible in end-to-end goodput.
#[test]
fn goodput_is_identical_across_worker_counts() {
    let serial = traffic_digest(20220822, 1);
    assert!(serial.contains("offered="), "digest has checkpoints");
    // Traffic flowed at some point (otherwise the contract is vacuous).
    let last = serial
        .lines()
        .rev()
        .find(|l| l.contains("offered="))
        .expect("checkpoints");
    assert!(!last.contains("offered=0 "), "run carried traffic: {last}");
    for workers in [2, 8, 0] {
        let got = traffic_digest(20220822, workers);
        assert!(
            got == serial,
            "workers={workers} diverged from serial goodput"
        );
    }
}

/// Identical seeded runs produce byte-identical traffic digests.
#[test]
fn goodput_is_identical_across_reruns() {
    let a = traffic_digest(20220822, 1);
    let b = traffic_digest(20220822, 1);
    assert!(a == b, "traffic digests diverged between identical runs");
}

/// The flat (aggregation-off) arm carries the same determinism
/// contracts: byte-identical across reruns and worker counts. The two
/// arms legitimately differ from each other under congestion (the
/// flat fill's sequential freeze cascade is flow-granular), so this
/// gates each arm against itself, not against the other.
#[test]
fn flat_arm_is_deterministic_across_workers_and_reruns() {
    let serial = traffic_digest_with(20220822, 1, false);
    assert!(serial.contains("offered="), "digest has checkpoints");
    let rerun = traffic_digest_with(20220822, 1, false);
    assert!(rerun == serial, "flat-arm digests diverged between reruns");
    let auto = traffic_digest_with(20220822, 0, false);
    assert!(auto == serial, "flat-arm auto workers diverged from serial");
}

/// With demand feedback active the solver sees different request
/// weights, so plans may legitimately differ — but the engine itself
/// must never leak randomness or timing into the rest of the world.
/// With feedback disabled, a traffic-on run's plans are bit-identical
/// to a traffic-off run's.
#[test]
fn traffic_without_feedback_is_invisible_to_planning() {
    let mut cfg = OrchestratorConfig::kenya(N_BALLOONS, 20220822);
    cfg.fleet.spawn_radius_m = 150_000.0;
    cfg.tick = SimDuration::from_secs(10);
    cfg.solve_interval = SimDuration::from_mins(5);
    cfg.probe_interval = SimDuration::from_secs(30);
    cfg.traffic = Some(TrafficConfig {
        workers: 1,
        feedback: false,
        ..TrafficConfig::default()
    });
    let mut on = Orchestrator::new(cfg);
    let end = SimTime::from_hours(24);
    let mut digest_on = String::new();
    while on.now() < end {
        on.run_until((on.now() + SimDuration::from_hours(1)).min(end));
        digest_on.push_str(&format!("{} {:?}\n", on.now(), on.last_plan));
    }
    let digest_off = plan_digest(20220822, false);
    assert!(
        digest_on == digest_off,
        "a feedback-off traffic engine must not perturb seeded planning"
    );
    // And the engine still measured the run.
    assert!(on.traffic().expect("enabled").series().offered_bits() > 0);
}
