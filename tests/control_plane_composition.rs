//! Hybrid control-plane composition: cpl + manet working together the
//! way §4 describes — satcom bootstraps, BATMAN carries the in-band
//! path, the frontend upgrades channels and infers success from the
//! side channel.

use tssdn_cpl::{CdpiConfig, CdpiEvent, CdpiFrontend, Channel, CommandBody, IntentKind};
use tssdn_link::TransceiverId;
use tssdn_manet::{Batman, Harness};
use tssdn_sim::{PlatformId, RngStreams, SimDuration, SimTime};

fn establish_body(intent: u64, a: u32, b: u32) -> CommandBody {
    CommandBody::EstablishLink {
        intent_id: intent,
        local: TransceiverId::new(PlatformId(a), 0),
        peer: TransceiverId::new(PlatformId(b), 0),
    }
}

/// The §4.1 bootstrap story as a test: a disconnected balloon receives
/// a link command via satcom; when the link comes up the mesh routes
/// it to a gateway; its in-band connection then confirms the intent
/// and subsequent commands ride in-band with 3 s TTEs.
#[test]
fn bootstrap_then_upgrade_to_inband() {
    let streams = RngStreams::new(5);
    let mut cdpi = CdpiFrontend::new(CdpiConfig::default(), &streams);
    let mut mesh = Harness::new(
        {
            let mut b = Batman::new();
            b.set_gateway(PlatformId(100), true); // the GS
            b
        },
        &streams,
    );
    mesh.add_node(PlatformId(0));
    mesh.add_node(PlatformId(100));

    // Balloon 0 is dark: only satcom reaches it.
    let (intent0, tte0) = cdpi.submit_intent(
        vec![(PlatformId(0), establish_body(0, 0, 100))],
        SimTime::ZERO,
    );
    assert_eq!(
        tte0,
        SimTime::from_secs(186),
        "satcom TTE for a dark balloon"
    );

    // Run until the command is delivered via satcom.
    let mut delivered = None;
    let mut t = SimTime::ZERO;
    while delivered.is_none() && t < SimTime::from_mins(20) {
        t += SimDuration::from_secs(1);
        for e in cdpi.poll(t) {
            if let CdpiEvent::DeliveredToNode { cmd, at, channel } = e {
                assert!(matches!(channel, Channel::Satcom(_)));
                assert_eq!(cmd.dest, PlatformId(0));
                delivered = Some(at);
            }
        }
    }
    let delivered = delivered.expect("satcom delivered the bootstrap command");

    // The balloon enacts at TTE: the physical link comes up and the
    // mesh learns it.
    let link_up_at = tte0.max(delivered) + SimDuration::from_secs(40);
    mesh.set_link(PlatformId(0), PlatformId(100), 0.95);
    mesh.run_until(link_up_at + SimDuration::from_secs(5));
    assert!(mesh.route_works(PlatformId(0), PlatformId(100)));
    assert_eq!(
        mesh.protocol().selected_gateway(PlatformId(0)),
        Some(PlatformId(100))
    );

    // Side channel: the in-band connection appears and confirms the
    // intent before any satcom ack round-trip would have.
    let hops = mesh
        .route_path(PlatformId(0), PlatformId(100))
        .expect("routed")
        .len() as u32
        - 1;
    let events = cdpi.node_connected_inband(PlatformId(0), hops, link_up_at);
    assert!(
        events.iter().any(|e| matches!(
            e,
            CdpiEvent::IntentConfirmed { intent_id, kind: IntentKind::Link, .. }
                if *intent_id == intent0
        )),
        "side channel confirmed the bootstrap link: {events:?}"
    );

    // Subsequent route programming rides in-band with the short TTE.
    let (_, tte1) = cdpi.submit_intent(
        vec![(
            PlatformId(0),
            CommandBody::SetRoutes {
                version: 1,
                entries: 4,
            },
        )],
        link_up_at,
    );
    assert_eq!(tte1, link_up_at + SimDuration::from_secs(3), "in-band TTE");
}

/// Mesh repair outpaces the controller: after a mid-path link failure,
/// BATMAN restores gateway reachability in a few OGM intervals —
/// faster than one satcom RTT could even begin to react.
#[test]
fn manet_repairs_faster_than_satcom_could() {
    let streams = RngStreams::new(6);
    let mut mesh = Harness::new(
        {
            let mut b = Batman::new();
            b.set_gateway(PlatformId(100), true);
            b
        },
        &streams,
    );
    // 0 - 1 - 100 with a redundant 0 - 2 - 100.
    mesh.set_link(PlatformId(0), PlatformId(1), 0.95);
    mesh.set_link(PlatformId(1), PlatformId(100), 0.95);
    mesh.set_link(PlatformId(0), PlatformId(2), 0.95);
    mesh.set_link(PlatformId(2), PlatformId(100), 0.95);
    mesh.run_until(SimTime::from_secs(15));
    assert!(mesh.route_works(PlatformId(0), PlatformId(100)));

    let via = mesh
        .route_path(PlatformId(0), PlatformId(100))
        .expect("path")[1];
    mesh.remove_link(PlatformId(0), via);
    let repaired = mesh
        .measure_convergence(
            tssdn_manet::ConvergenceProbe {
                from: PlatformId(0),
                to: PlatformId(100),
            },
            SimTime::from_secs(60),
        )
        .expect("repaired");
    // Satcom best-case RTT is 23 s; BATMAN must beat it comfortably.
    assert!(
        repaired.as_secs_f64() < 15.0,
        "mesh repair ({repaired}) beats satcom's best case"
    );
}

/// Route updates must never ride satcom: the gateway drops them and
/// the frontend's retry ladder eventually expires the intent if the
/// node never connects.
#[test]
fn route_updates_never_ride_satcom() {
    let streams = RngStreams::new(7);
    let mut cdpi = CdpiFrontend::new(CdpiConfig::default(), &streams);
    let (intent, _) = cdpi.submit_intent(
        vec![(
            PlatformId(3),
            CommandBody::SetRoutes {
                version: 9,
                entries: 12,
            },
        )],
        SimTime::ZERO,
    );
    let mut expired = false;
    let mut t = SimTime::ZERO;
    while t < SimTime::from_mins(30) {
        t += SimDuration::from_secs(1);
        for e in cdpi.poll(t) {
            match e {
                CdpiEvent::DeliveredToNode { channel, .. } => {
                    assert_eq!(channel, Channel::InBand, "route update on satcom!");
                }
                CdpiEvent::Expired { intent_id, .. } if intent_id == intent => {
                    expired = true;
                }
                _ => {}
            }
        }
    }
    assert!(expired, "undeliverable route update expired");
}

/// Two-balloon intents take the worst channel's TTE (§4.2: "set the
/// TTE to the longest delay"), and an intent whose endpoints are all
/// in-band confirms fast end to end.
#[test]
fn intent_tte_composition_and_fast_path() {
    let streams = RngStreams::new(8);
    let mut cdpi = CdpiFrontend::new(CdpiConfig::default(), &streams);
    cdpi.inband.loss_prob = 0.0;
    let now = SimTime::from_secs(100);
    cdpi.inband.set_reachable(PlatformId(0), 2, now);
    cdpi.inband.set_reachable(PlatformId(1), 3, now);
    let (intent, tte) = cdpi.submit_intent(
        vec![
            (PlatformId(0), establish_body(1, 0, 1)),
            (PlatformId(1), establish_body(1, 1, 0)),
        ],
        now,
    );
    assert_eq!(tte, now + SimDuration::from_secs(3));
    // Both commands deliver in-band within a second; transport acks
    // confirm the intent without any satcom involvement.
    let mut t = now;
    let mut confirmed = false;
    while t < now + SimDuration::from_secs(30) && !confirmed {
        t += SimDuration::from_secs(1);
        cdpi.inband.set_reachable(PlatformId(0), 2, t);
        cdpi.inband.set_reachable(PlatformId(1), 3, t);
        for e in cdpi.poll(t) {
            if let CdpiEvent::IntentConfirmed { intent_id, .. } = e {
                if intent_id == intent {
                    confirmed = true;
                }
            }
        }
    }
    assert!(confirmed, "all-in-band intent confirmed quickly");
    assert!(!cdpi.records()[0].used_satcom);
}
