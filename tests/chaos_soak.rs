//! Chaos soak: the full orchestrator under seeded multi-fault plans.
//!
//! Each plan is generated deterministically from a seed by the fault
//! engine (`tssdn-fault`) and covers the failure modes §2.2/§4
//! describe operationally: ground-site outages, satcom brownouts,
//! in-band partitions, transceiver hardware faults, balloon loss, and
//! command-channel chaos. The soak asserts the robustness contract:
//!
//! * no panics across the whole run (trivially, by finishing);
//! * no permanently stuck intents — every command either enacts,
//!   retries with backoff, or expires within the CDPI attempt budget;
//! * bounded post-fault recovery — service returns after the last
//!   fault window clears;
//! * bit-identical `RunSummary` for repeated runs of the same
//!   `(seed, plan)` pair;
//! * a node cut off from the controller reports *fail-static*
//!   (stale-but-forwarding), not route loss.
//!
//! Worlds are built from `ScenarioSpec`s (`tssdn-scenario`) rather
//! than hand-assembled configs; `spec_builder_matches_hand_built_world`
//! pins the builder to the old construction bit for bit.

use tssdn_core::orchestrator::DataPlaneStatus;
use tssdn_core::{LinkIntentState, Orchestrator, RunSummary};
use tssdn_fault::{FaultKind, FaultPlan};
use tssdn_scenario::{chaos_soak_spec, FaultsSpec, KindSpec, ScenarioSpec, WindowSpec};
use tssdn_sim::{PlatformId, SimDuration, SimTime};
use tssdn_telemetry::Layer;

const N_BALLOONS: usize = 6;

/// The soak's base world as a spec: `kenya(6)` at 150 km with the
/// `kenya_daytime` seeded fault family; traffic and multipath off.
fn base_spec(seed: u64) -> ScenarioSpec {
    chaos_soak_spec("chaos_soak", seed)
}

/// A soak world with no injected faults.
fn quiet_world(seed: u64) -> Orchestrator {
    let mut spec = base_spec(seed);
    spec.faults = FaultsSpec::Quiet;
    spec.build()
}

fn plan_for(seed: u64) -> FaultPlan {
    base_spec(seed).fault_plan()
}

/// Run one seeded plan to `end`, returning the summary.
fn soak_run(seed: u64, end: SimTime) -> (RunSummary, Orchestrator) {
    let mut o = base_spec(seed).build();
    o.run_until(end);
    (o.summary(), o)
}

/// An intent is "stuck" when it has sat in `Commanded` longer than the
/// CDPI could possibly keep trying: max_attempts sends with capped
/// exponential backoff between them all fit comfortably inside an
/// hour, after which the command must have enacted or expired.
fn stuck_intents(o: &Orchestrator) -> Vec<String> {
    let horizon = SimDuration::from_hours(1);
    o.intents
        .live()
        .filter(|i| matches!(i.state, LinkIntentState::Commanded { .. }))
        .filter(|i| o.now().since(i.created) > horizon)
        .map(|i| format!("{} created {} state {:?}", i.id, i.created, i.state))
        .collect()
}

/// The spec builder reproduces the old hand-assembled soak world bit
/// for bit: same `RunSummary`, same chaos log, same traffic counters.
/// This pinned the migration before the copy-pasted construction was
/// deleted — if the builder ever drifts from `kenya(n)` + spawn-radius
/// + `kenya_daytime`, this is the test that says so.
#[test]
fn spec_builder_matches_hand_built_world() {
    use tssdn_core::{OrchestratorConfig, TrafficConfig};
    use tssdn_fault::PlanConfig;

    let seed = 9001u64;
    let end = SimTime::from_hours(14);

    // The old construction, verbatim.
    let gs_ids: Vec<PlatformId> = (N_BALLOONS as u32..N_BALLOONS as u32 + 3)
        .map(PlatformId)
        .collect();
    let mut cfg = OrchestratorConfig::kenya(N_BALLOONS, seed);
    cfg.fleet.spawn_radius_m = 150_000.0;
    cfg.fault_plan =
        FaultPlan::generate(seed, &PlanConfig::kenya_daytime(N_BALLOONS as u32, gs_ids));
    cfg.multipath_routes = true;
    cfg.traffic = Some(TrafficConfig::default());
    let mut old = Orchestrator::new(cfg);
    old.run_until(end);

    // The spec equivalent.
    let mut spec = base_spec(seed);
    spec.multipath = true;
    spec.traffic.enabled = true;
    let mut new = spec.build();
    new.run_until(end);

    assert_eq!(old.summary(), new.summary(), "RunSummary diverged");
    assert_eq!(old.chaos.log, new.chaos.log, "chaos log diverged");
    let so = old.traffic().expect("traffic enabled").series();
    let sn = new.traffic().expect("traffic enabled").series();
    assert_eq!(
        (
            so.offered_bits(),
            so.delivered_bits(),
            so.total_disruptions()
        ),
        (
            sn.offered_bits(),
            sn.delivered_bits(),
            sn.total_disruptions()
        ),
        "traffic counters diverged"
    );
}

/// Five seeded plans: the run completes, the chaos engine fired every
/// scheduled window, and no intent is permanently stuck.
#[test]
fn seeded_plans_soak_clean() {
    for seed in [9001u64, 9002, 9003, 9004, 9005] {
        let plan = plan_for(seed);
        assert!(!plan.windows.is_empty(), "seed {seed}: plan has faults");
        let n_windows = plan.windows.len();
        let last_clear = plan.last_clear().expect("closed windows exist");
        let end = (last_clear + SimDuration::from_hours(1)).max(SimTime::from_hours(14));
        let (summary, o) = soak_run(seed, end);

        // Every scheduled window opened (and, where closed, cleared).
        let started = o
            .chaos
            .log
            .iter()
            .filter(|t| matches!(t, tssdn_fault::FaultTransition::Started { .. }))
            .count();
        assert_eq!(started, n_windows, "seed {seed}: all fault windows fired");

        let stuck = stuck_intents(&o);
        assert!(stuck.is_empty(), "seed {seed}: stuck intents: {stuck:?}");

        // The network did real work despite the faults.
        assert!(summary.intents_created > 0, "seed {seed}: {summary:?}");
        assert!(summary.links_established > 0, "seed {seed}: {summary:?}");
    }
}

/// Bit-identical repeated runs: same seed + same plan ⇒ the same
/// `RunSummary`, the same ledger, and the same chaos/control-plane
/// counters. Chaos draws come from dedicated RNG streams, so the
/// whole closed loop stays deterministic.
#[test]
fn repeated_runs_are_bit_identical() {
    for seed in [9001u64, 9004] {
        let end = SimTime::from_hours(14);
        let (s1, o1) = soak_run(seed, end);
        let (s2, o2) = soak_run(seed, end);
        assert_eq!(s1, s2, "seed {seed}: RunSummary differs between runs");
        assert_eq!(
            o1.ledger.records().len(),
            o2.ledger.records().len(),
            "seed {seed}: ledger diverged"
        );
        assert_eq!(
            o1.chaos.log, o2.chaos.log,
            "seed {seed}: chaos log diverged"
        );
        assert_eq!(
            (
                o1.cdpi.satcom.sent,
                o1.cdpi.satcom.brownout_lost,
                o1.cdpi.dedup_suppressed
            ),
            (
                o2.cdpi.satcom.sent,
                o2.cdpi.satcom.brownout_lost,
                o2.cdpi.dedup_suppressed
            ),
            "seed {seed}: control-plane counters diverged"
        );
    }
}

/// Bounded recovery: an hour after the last fault window clears, the
/// mesh is carrying traffic again.
#[test]
fn service_recovers_after_the_last_fault_clears() {
    let seed = 9003u64;
    let plan = plan_for(seed);
    let last_clear = plan.last_clear().expect("closed windows");
    let end = (last_clear + SimDuration::from_hours(1)).max(SimTime::from_hours(14));
    let (_, o) = soak_run(seed, end);
    let up = (0..N_BALLOONS as u32)
        .filter(|b| o.data_plane_status(PlatformId(*b)) == DataPlaneStatus::Up)
        .count();
    assert!(
        up > 0,
        "post-fault recovery: {up}/{N_BALLOONS} balloons up at {}",
        o.now()
    );
    let dp = o.availability.overall(Layer::DataPlane);
    assert!(
        dp.map(|a| a > 0.0).unwrap_or(false),
        "data plane saw uptime: {dp:?}"
    );
}

/// Fail-static: partitioning a programmed balloon from the in-band
/// control plane leaves it forwarding on its last routes — status
/// `FailStatic`, not a route loss — and the stale-forwarding time
/// shows up in the `DataPlaneStale` availability layer.
#[test]
fn partitioned_node_reports_fail_static() {
    let mut found = false;
    for seed in [501u64, 502, 503] {
        let mut o = quiet_world(seed);
        o.run_until(SimTime::from_hours(11));
        let programmed: Vec<PlatformId> = (0..N_BALLOONS as u32)
            .map(PlatformId)
            .filter(|b| o.data_plane_status(*b) == DataPlaneStatus::Up)
            .collect();
        if programmed.is_empty() {
            continue;
        }
        o.chaos.force_start(
            FaultKind::InbandPartition {
                nodes: programmed.clone(),
            },
            o.now(),
        );
        o.run_until(o.now() + SimDuration::from_mins(2));
        for b in &programmed {
            let st = o.data_plane_status(*b);
            assert_ne!(
                st,
                DataPlaneStatus::Up,
                "{b:?} cannot be Up while partitioned"
            );
            if st == DataPlaneStatus::FailStatic {
                found = true;
                assert!(
                    !o.cdpi.inband.is_reachable(*b, o.now()),
                    "fail-static implies control-plane cut"
                );
            }
        }
        if found {
            let stale = o.availability.overall(Layer::DataPlaneStale);
            assert!(
                stale.map(|a| a > 0.0).unwrap_or(false),
                "stale-forwarding time recorded: {stale:?}"
            );
            break;
        }
    }
    assert!(found, "no seed produced a fail-static balloon");
}

/// Traffic under chaos (E16): with the flow-level engine enabled, the
/// mesh still delivers real bits through the fault plans, goodput
/// stays a valid ratio, the engine's disruption counter catches at
/// least one path torn under load across the plan family, and the
/// delivered-bits / disruption totals are bit-identical on a rerun.
#[test]
fn traffic_delivers_under_chaos_and_counts_disruptions() {
    let traffic_soak = |seed: u64| {
        let mut spec = base_spec(seed);
        spec.traffic.enabled = true;
        let end = (spec.fault_plan().last_clear().expect("closed windows")
            + SimDuration::from_hours(1))
        .max(SimTime::from_hours(14));
        let mut o = spec.build();
        o.run_until(end);
        let s = o.traffic().expect("traffic enabled").series();
        (s.offered_bits(), s.delivered_bits(), s.total_disruptions())
    };

    let mut disruptions_total = 0u64;
    for seed in [9001u64, 9002, 9003] {
        let (offered, delivered, disruptions) = traffic_soak(seed);
        assert!(offered > 0, "seed {seed}: demand offered during the soak");
        assert!(delivered > 0, "seed {seed}: bits delivered despite chaos");
        assert!(delivered <= offered, "seed {seed}: goodput is a ratio");
        disruptions_total += disruptions;
    }
    assert!(
        disruptions_total > 0,
        "some fault window tore a path while it carried load"
    );

    // Rerun determinism extends to the traffic counters.
    assert_eq!(
        traffic_soak(9001),
        traffic_soak(9001),
        "traffic counters diverged on rerun"
    );
}

/// Multipath + store-and-forward under chaos (E18 riding the E16 plan
/// family). One soak pins all three PR bugfixes plus the buffering
/// contract:
///
/// * no stale alternate routes survive redundancy loss — the
///   orchestrator's alt-withdrawal pass leaves `stale_alt_flows()`
///   empty at end of run;
/// * alternates ride the primary's combined SetRoutes program — the
///   piggyback counter fires instead of the old deferral workaround;
/// * control-class goodput stays ≥ 0.99 whenever the class was
///   offered at all: routeless windows are availability losses on the
///   site series, never a priority failure on the class series;
/// * buffered bulk bits are conserved — every queued bit is drained,
///   evicted, or still resident (no leaks) — and cumulative delivered
///   never exceeds offered;
/// * all of it bit-identical on a rerun.
#[test]
fn multipath_snf_soak_holds_bugfix_invariants() {
    use tssdn_telemetry::ServiceClass;
    use tssdn_traffic::SnfTotals;

    let soak = |seed: u64| -> (u64, u64, SnfTotals, u64) {
        let mut spec = base_spec(seed);
        spec.multipath = true;
        spec.traffic.enabled = true;
        let end = (spec.fault_plan().last_clear().expect("closed windows")
            + SimDuration::from_hours(1))
        .max(SimTime::from_hours(14));
        let mut o = spec.build();
        o.run_until(end);

        let stale = o.stale_alt_flows();
        assert!(stale.is_empty(), "seed {seed}: stale alt routes: {stale:?}");

        let e = o.traffic().expect("traffic enabled");
        let s = e.series();
        if let Some(g) = s.class_goodput(ServiceClass::Control) {
            assert!(
                g >= 0.99,
                "seed {seed}: control class dipped to {g} despite strict priority"
            );
        }

        let t = e.snf_totals();
        assert_eq!(
            t.queued_bits,
            t.drained_bits + t.evicted_bits + t.buffered_bits + t.in_transit_bits,
            "seed {seed}: buffered bits leaked: {t:?}"
        );
        assert!(
            s.delivered_bits() <= s.offered_bits(),
            "seed {seed}: goodput is a ratio even with drains"
        );
        (
            s.offered_bits(),
            s.delivered_bits(),
            t,
            o.alt_programs_piggybacked,
        )
    };

    let mut queued_total = 0u64;
    let mut piggybacked_total = 0u64;
    let mut first = None;
    for seed in [9001u64, 9002, 9003] {
        let r = soak(seed);
        assert!(r.0 > 0, "seed {seed}: demand offered");
        assert!(r.1 > 0, "seed {seed}: bits delivered despite chaos");
        queued_total += r.2.queued_bits;
        piggybacked_total += r.3;
        if seed == 9001 {
            first = Some(r);
        }
    }
    assert!(
        queued_total > 0,
        "some blackhole window should have buffered bulk bits"
    );
    assert!(
        piggybacked_total > 0,
        "alternates should ride combined SetRoutes programs"
    );

    // Rerun determinism covers the buffer counters too.
    assert_eq!(
        soak(9001),
        first.expect("seed 9001 ran"),
        "soak diverged on rerun"
    );
}

/// Custody transfer under a directed fault plan (E19's mechanism in
/// the full closed loop). A 25-minute total ground blackout builds a
/// backlog on every site; balloon 1 is lost abruptly mid-blackout
/// (its backlog dies with it — the loss custody exists to prevent),
/// while balloon 0's loss is *warned* eight minutes ahead, so the
/// orchestrator designates a custodian and the doomed balloon pushes
/// its backlog out over a lateral link before the window lands. The
/// run is stepped in one-minute increments so the engine's per-tick
/// conservation debug-assert is exercised at a fine grain, and the
/// whole thing must replay bit-identically.
#[test]
fn warned_balloon_loss_hands_custody_of_its_backlog() {
    let blackout_min = 10 * 60u64;
    let directed = || {
        let mut windows: Vec<WindowSpec> = (N_BALLOONS as u32..N_BALLOONS as u32 + 3)
            .map(|site| WindowSpec {
                start_min: blackout_min,
                duration_mins: Some(25),
                kind: KindSpec::GsOutage { site },
            })
            .collect();
        windows.push(WindowSpec {
            start_min: blackout_min + 10,
            duration_mins: Some(30),
            kind: KindSpec::BalloonLoss { balloon: 1 },
        });
        windows.push(WindowSpec {
            start_min: blackout_min + 20,
            duration_mins: Some(40),
            kind: KindSpec::BalloonLossWarned {
                balloon: 0,
                lead_mins: 8,
            },
        });
        FaultsSpec::Directed(windows)
    };

    let soak = |seed: u64| {
        let mut spec = base_spec(seed);
        spec.faults = directed();
        spec.traffic.enabled = true;
        let mut o = spec.build();
        // Fine-grained stepping: the engine debug-asserts the
        // extended conservation invariant at every tick boundary.
        let end = SimTime::from_hours(12);
        while o.now() < end {
            o.run_until(o.now() + SimDuration::from_mins(1));
        }
        let e = o.traffic().expect("traffic enabled");
        let t = e.snf_totals();
        assert_eq!(
            t.queued_bits,
            t.drained_bits + t.evicted_bits + t.buffered_bits + t.in_transit_bits,
            "seed {seed}: bits leaked: {t:?}"
        );
        (t, o.custody_intents_issued, o.summary())
    };

    let (t, intents, summary) = soak(31);
    assert!(
        t.backlog_lost_bits > 0,
        "the abrupt loss wipes balloon 1's backlog: {t:?}"
    );
    assert!(intents > 0, "the warning produced a custody designation");
    assert!(
        t.custody_initiated_bits > 0,
        "the warned balloon pushed bits out: {t:?}"
    );
    assert!(
        t.custody_accepted_bits > 0,
        "a custodian took the bits: {t:?}"
    );
    assert_eq!(
        t.custody_initiated_bits,
        t.custody_accepted_bits + t.custody_refused_bits + t.custody_lost_bits + t.in_transit_bits,
        "custody ledger closes: {t:?}"
    );
    // Rerun determinism covers the custody counters.
    assert_eq!(soak(31), (t, intents, summary), "soak diverged on rerun");
}

/// The legacy outage shim routes through the chaos engine: flipping a
/// site dark and back again leaves a start + clear pair in the log.
#[test]
fn gs_outage_shim_is_logged_by_the_engine() {
    let mut o = quiet_world(77);
    let gs = base_spec(77).gs_ids()[0];
    o.run_until(SimTime::from_hours(9));
    o.set_gs_outage(gs, true);
    assert!(o.chaos.gs_dark(gs));
    o.run_until(o.now() + SimDuration::from_mins(5));
    o.set_gs_outage(gs, false);
    assert!(!o.chaos.gs_dark(gs));
    let starts = o
        .chaos
        .log
        .iter()
        .filter(|t| {
            matches!(t, tssdn_fault::FaultTransition::Started { kind: FaultKind::GsOutage { site }, .. } if *site == gs)
        })
        .count();
    let clears = o
        .chaos
        .log
        .iter()
        .filter(|t| {
            matches!(t, tssdn_fault::FaultTransition::Cleared { kind: FaultKind::GsOutage { site }, .. } if *site == gs)
        })
        .count();
    assert_eq!(
        (starts, clears),
        (1, 1),
        "shim start/clear logged: {:?}",
        o.chaos.log
    );
}
