//! Data-plane consistency under the orchestrator: forwarding state,
//! drains, and tunnels behave per Appendix C while the full loop runs.

use tssdn_core::{orchestrator::DataPlaneStatus, Orchestrator, OrchestratorConfig};
use tssdn_dataplane::DrainMode;
use tssdn_sim::{PlatformId, SimDuration, SimTime};

fn world(seed: u64) -> Orchestrator {
    let mut cfg = OrchestratorConfig::kenya(10, seed);
    cfg.fleet.spawn_radius_m = 220_000.0;
    Orchestrator::new(cfg)
}

#[test]
fn active_paths_start_at_balloon_and_end_at_gateway() {
    let mut o = world(81);
    o.run_until(SimTime::from_hours(11));
    let mut seen_any = false;
    for b in 0..10u32 {
        let id = PlatformId(b);
        if let Some(path) = o.active_path(id) {
            seen_any = true;
            assert_eq!(path.first(), Some(&id), "path starts at the balloon");
            let last = *path.last().expect("non-empty");
            assert_eq!(last, o.ec_ids()[0], "path terminates at the EC");
            // The hop before the EC is a ground station with a tunnel.
            let gs = path[path.len() - 2];
            assert!(
                o.tunnels.connected(gs, last),
                "penultimate hop {gs} must hold a tunnel to {last}"
            );
            // No repeated nodes (loop-free).
            let mut uniq = path.clone();
            uniq.sort_by_key(|p| p.0);
            uniq.dedup();
            assert_eq!(uniq.len(), path.len(), "loop-free: {path:?}");
        }
    }
    assert!(seen_any, "some balloon had an active path by 11:00");
}

#[test]
fn data_plane_status_and_active_path_agree() {
    let mut o = world(82);
    o.run_until(SimTime::from_hours(12));
    for b in 0..10u32 {
        let id = PlatformId(b);
        let status = o.data_plane_status(id);
        let path = o.active_path(id);
        assert_eq!(
            status == DataPlaneStatus::Up,
            path.is_some(),
            "status {status:?} vs path {path:?} for {id}"
        );
    }
}

#[test]
fn force_drain_evicts_and_cancel_restores() {
    let mut o = world(83);
    o.run_until(SimTime::from_hours(11));
    // Force-drain the first balloon that is currently relaying.
    let victim = (0..10u32)
        .map(PlatformId)
        .find(|v| {
            (0..10u32)
                .filter(|b| PlatformId(*b) != *v)
                .filter_map(|b| o.active_path(PlatformId(b)))
                .any(|p| p.contains(v))
        })
        .or_else(|| {
            (0..10u32)
                .map(PlatformId)
                .find(|v| o.active_path(*v).is_some())
        });
    let Some(victim) = victim else {
        // Mesh too sparse this seed; nothing to assert.
        return;
    };
    o.drains.request(victim, DrainMode::Force, o.now(), None);
    o.run_until(o.now() + SimDuration::from_mins(30));
    // The solver must not route new paths through the drained node.
    for b in 0..10u32 {
        if PlatformId(b) == victim {
            continue;
        }
        if let Some(p) = o.active_path(PlatformId(b)) {
            // Paths re-programmed since the drain avoid the victim;
            // stale ones may persist briefly, but after 30 minutes of
            // solves they must be gone.
            assert!(
                !p.contains(&victim),
                "path through force-drained node after 30 min: {p:?}"
            );
        }
    }
    // Cancelling re-admits the node within a few solve cycles.
    o.drains.cancel(victim);
    o.run_until(o.now() + SimDuration::from_hours(2));
    // (No assertion on re-use — geometry may not favor it — but the
    // drain registry must report inactive.)
    assert!(!o.drains.active(victim, o.now()));
}

#[test]
fn tunnels_are_preconditions_for_data_plane() {
    let mut o = world(84);
    o.run_until(SimTime::from_hours(11));
    let ec = o.ec_ids()[0];
    let gws = o.tunnels.gateways_to(ec);
    assert_eq!(gws.len(), 3, "every GS tunnels to the EC");
    // Tear all tunnels down: data plane must collapse even though
    // links stay up.
    let ids: Vec<_> = (0..3).map(tssdn_dataplane::TunnelId).collect();
    for id in ids {
        o.tunnels.set_down(id);
    }
    for b in 0..10u32 {
        assert_ne!(
            o.data_plane_status(PlatformId(b)),
            DataPlaneStatus::Up,
            "no tunnels ⇒ no data plane"
        );
    }
    let links_up = o.intents.established().count();
    assert!(links_up > 0, "the mesh itself is unaffected");
}

#[test]
fn forwarding_tables_stay_bounded() {
    // Stale-entry cleanup on route confirmation must keep table sizes
    // proportional to flows, not to history.
    let mut o = world(85);
    o.run_until(SimTime::from_hours(16));
    for b in 0..10u32 {
        if let Some(t) = o.fabric.table(PlatformId(b)) {
            // Each node carries at most 2 entries per flow (forward +
            // reverse) for 10 flows.
            assert!(
                t.len() <= 20,
                "table on p{b} has {} entries (history leak?)",
                t.len()
            );
        }
    }
}
