//! Weather → RF → link integration: storms must degrade the right
//! links in the right way, and the controller's weather-source choice
//! must change what it believes (not what is true).

use tssdn_core::{NetworkModel, WeatherSource};
use tssdn_geo::GeoPoint;
use tssdn_link::Transceiver;
use tssdn_rf::{
    evaluate_link, AntennaPattern, ForecastView, ItuSeasonal, RadioParams, RainCell, RainGauge,
    SyntheticWeather, WeatherField,
};
use tssdn_sim::{PlatformId, SimTime};

fn storm_over(lat: f64, lon: f64) -> SyntheticWeather {
    SyntheticWeather::new().with_cell(RainCell {
        center: GeoPoint::new(lat, lon, 0.0),
        vel_east_mps: 0.0,
        vel_north_mps: 0.0,
        radius_m: 15_000.0,
        peak_rain_mm_h: 40.0,
        start_ms: 0,
        end_ms: 6 * 3600 * 1000,
    })
}

const MID_STORM_MS: u64 = 3 * 3600 * 1000;

#[test]
fn storm_at_gs_kills_b2g_but_not_b2b() {
    let gs = GeoPoint::new(-1.0, 36.8, 1_600.0);
    let balloon_a = GeoPoint::new(-1.0, 38.0, 18_000.0);
    let balloon_b = GeoPoint::new(-1.0, 39.5, 18_200.0);
    let storm = storm_over(-1.0, 36.9); // right over the GS sightline
    let p = RadioParams::e_band_low();
    let gs_pat = AntennaPattern::e_band_ground_station();
    let b_pat = AntennaPattern::e_band_balloon();

    let b2g = evaluate_link(
        &gs,
        &balloon_a,
        &p,
        &gs_pat,
        &b_pat,
        0.0,
        0.0,
        &storm,
        MID_STORM_MS,
    );
    let b2b = evaluate_link(
        &balloon_a,
        &balloon_b,
        &p,
        &b_pat,
        &b_pat,
        0.0,
        0.0,
        &storm,
        MID_STORM_MS,
    );
    assert!(
        b2g.attenuation.rain_db > 10.0,
        "B2G path soaked: {:?}",
        b2g.attenuation
    );
    assert!(
        b2b.attenuation.rain_db < 0.5,
        "B2B rides above the weather: {:?}",
        b2b.attenuation
    );
    assert_eq!(b2b.quality, tssdn_rf::LinkQuality::Acceptable);
}

#[test]
fn gauge_sees_storm_forecast_misplaces_it() {
    let truth = storm_over(-1.0, 36.8);
    let site = GeoPoint::new(-1.0, 36.8, 1_600.0);
    let gauge = RainGauge {
        site,
        representative_radius_m: 30_000.0,
    };
    // A 40 km-displaced forecast: misses the site.
    let forecast = ForecastView::new(truth.clone(), 40_000.0, 0, 1.0);

    let truth_rain = truth.sample(&site, MID_STORM_MS).rain_mm_h;
    let gauge_rain = gauge.read(&truth, MID_STORM_MS);
    let forecast_rain = forecast.sample(&site, MID_STORM_MS).rain_mm_h;
    assert!(truth_rain > 30.0);
    assert!((gauge_rain - truth_rain).abs() < 1e-9, "gauges read truth");
    assert!(
        forecast_rain < truth_rain / 3.0,
        "displaced forecast misses the storm: {forecast_rain} vs {truth_rain}"
    );
}

#[test]
fn model_weather_stack_prefers_gauges_over_forecast() {
    let truth = storm_over(-1.0, 36.8);
    let site = GeoPoint::new(-1.0, 36.8, 1_600.0);
    // Forecast hallucinating 10× intensity; gauge knows better.
    let forecast = ForecastView::new(truth, 0.0, 0, 10.0);
    let mut model = NetworkModel::new(WeatherSource::GaugesAndForecast {
        gauges: vec![RainGauge {
            site,
            representative_radius_m: 30_000.0,
        }],
        forecast,
        backstop: ItuSeasonal::tropical_wet(),
    });
    model.add_platform(
        PlatformId(0),
        tssdn_sim::PlatformKind::Balloon,
        Vec::<Transceiver>::new(),
    );
    // Fresh gauge reading written by the orchestrator.
    model.gauge_readings = vec![(site, 12.0, SimTime::ZERO)];
    let near = model.modelled_weather(&site.offset(5_000.0, 0.0, 0.0), SimTime(MID_STORM_MS));
    assert!(
        (near.rain_mm_h - 12.0).abs() < 1e-9,
        "gauge value wins near the site: {near:?}"
    );
    // Far from any gauge, the (inflated) forecast rules.
    let far = model.modelled_weather(
        &GeoPoint::new(-1.0, 36.8, 500.0).offset(200_000.0, 0.0, 0.0),
        SimTime(MID_STORM_MS),
    );
    assert!(near.rain_mm_h < far.rain_mm_h || far.rain_mm_h >= 0.0);
}

#[test]
fn attenuation_breakdown_attributes_sources() {
    let gs = GeoPoint::new(-1.0, 36.8, 1_600.0);
    let balloon = GeoPoint::new(-1.0, 38.0, 18_000.0);
    let p = RadioParams::e_band_low();
    let gs_pat = AntennaPattern::e_band_ground_station();
    let b_pat = AntennaPattern::e_band_balloon();

    let clear = evaluate_link(
        &gs,
        &balloon,
        &p,
        &gs_pat,
        &b_pat,
        0.0,
        0.0,
        &tssdn_rf::ClearSky,
        0,
    );
    assert!(clear.attenuation.fspl_db > 150.0, "FSPL dominates");
    assert!(clear.attenuation.gaseous_db > 1.0, "low path absorbs");
    assert_eq!(clear.attenuation.rain_db, 0.0);
    assert_eq!(clear.attenuation.moisture_db(), clear.attenuation.cloud_db);

    let stormy = evaluate_link(
        &gs,
        &balloon,
        &p,
        &gs_pat,
        &b_pat,
        0.0,
        0.0,
        &storm_over(-1.0, 36.9),
        MID_STORM_MS,
    );
    assert_eq!(
        stormy.attenuation.fspl_db, clear.attenuation.fspl_db,
        "geometry unchanged"
    );
    assert!(stormy.attenuation.moisture_db() > 10.0);
    assert!(
        (stormy.attenuation.total_db()
            - (stormy.attenuation.fspl_db
                + stormy.attenuation.gaseous_db
                + stormy.attenuation.rain_db
                + stormy.attenuation.cloud_db))
            .abs()
            < 1e-9
    );
}

#[test]
fn grid_cache_approximates_direct_sampling_through_a_storm() {
    let truth = storm_over(-1.0, 36.8);
    let grid = tssdn_rf::WeatherGrid::build(
        &truth, -2.0, 0.04, 51, 36.0, 0.04, 51, 0.0, 1_500.0, 8, 0, 600_000, 37,
    );
    // Compare rain along a B2G path sampled both ways.
    let mut max_err: f64 = 0.0;
    for i in 0..20 {
        let f = i as f64 / 19.0;
        let p = GeoPoint::new(-1.0, 36.8 + f * 0.9, 1_600.0 + f * 16_000.0);
        let a = truth.sample(&p, MID_STORM_MS).rain_mm_h;
        let b = grid.sample(&p, MID_STORM_MS).rain_mm_h;
        max_err = max_err.max((a - b).abs());
    }
    // 0.04° ≈ 4.4 km bins against a 15 km-σ Gaussian: interpolation
    // error peaks on the cell's steep flank at a few mm/h out of 40.
    assert!(max_err < 6.0, "grid error stays small: {max_err}");
}
