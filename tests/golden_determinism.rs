//! Golden determinism: the optimized planning hot path changes *how*
//! plans are computed, never *which* plans come out.
//!
//! Two contracts, each checked with chaos off and on:
//!
//! * **Repeatability** — two identical seeded 3-day orchestrator runs
//!   produce byte-identical plan digests (the `Debug` rendering of
//!   `last_plan` at every checkpoint) and identical `RunSummary`s.
//! * **Golden equivalence** — at periodic checkpoints mid-run, an
//!   evaluate→solve on the orchestrator's live state is bit-identical
//!   to the retained naive reference (`evaluate_reference` /
//!   `solve_reference`, the pre-optimization algorithms kept verbatim
//!   in `tssdn_core::reference`). This exercises the hysteresis path
//!   (live intents as the previous topology), drains, and
//!   enactment-feedback pair penalties as they actually occur in a
//!   long run — not just synthetic inputs.

use std::collections::BTreeSet;
use tssdn_core::reference::{evaluate_reference, solve_reference};
use tssdn_core::{Orchestrator, OrchestratorConfig, RunSummary};
use tssdn_fault::{FaultPlan, PlanConfig};
use tssdn_sim::{PlatformId, SimDuration, SimTime};

const N_BALLOONS: usize = 5;

/// GS platform ids for a `kenya(N_BALLOONS)` world (balloons first,
/// then three ground stations).
fn gs_ids() -> Vec<PlatformId> {
    (N_BALLOONS as u32..N_BALLOONS as u32 + 3)
        .map(PlatformId)
        .collect()
}

fn world(seed: u64, chaos: bool) -> Orchestrator {
    let mut cfg = OrchestratorConfig::kenya(N_BALLOONS, seed);
    cfg.fleet.spawn_radius_m = 150_000.0;
    // Coarser cadence than the operational defaults so a 3-day run
    // stays affordable in debug builds; determinism does not depend
    // on the tick rate.
    cfg.tick = SimDuration::from_secs(10);
    cfg.solve_interval = SimDuration::from_mins(5);
    cfg.probe_interval = SimDuration::from_secs(30);
    if chaos {
        cfg.fault_plan = FaultPlan::generate(
            seed,
            &PlanConfig::kenya_daytime(N_BALLOONS as u32, gs_ids()),
        );
    }
    Orchestrator::new(cfg)
}

/// One evaluate→solve on the orchestrator's current state, optimized
/// and reference, asserted bit-identical. Uses exactly the inputs
/// `solve_and_actuate` would: live intent keys as the previous
/// topology, tunnel gateways, the drain registry, and whatever pair
/// penalties the last feedback pass left on the solver.
fn assert_planning_equivalence(o: &Orchestrator) {
    let at = o.now();
    let graph = o.evaluate_candidates(at);
    let graph_ref = evaluate_reference(o.evaluator(), o.network_model(), at);
    assert!(
        graph == graph_ref,
        "evaluate diverged from reference at {at} ({} vs {} candidates)",
        graph.len(),
        graph_ref.len()
    );

    let previous: BTreeSet<_> = o.intents.live().map(|i| i.key()).collect();
    let tunnels = &o.tunnels;
    let gw = |ec: PlatformId| tunnels.gateways_to(ec);
    let plan = o
        .solver()
        .solve(&graph, o.backhaul_requests(), &gw, &previous, &o.drains, at);
    let plan_ref = solve_reference(
        o.solver(),
        &graph,
        o.backhaul_requests(),
        &gw,
        &previous,
        &o.drains,
        at,
    );
    assert!(
        plan == plan_ref,
        "solve diverged from reference at {at} ({} live intents as previous)",
        previous.len()
    );
}

/// Run 3 days, appending the current plan to a digest every hour.
/// With `gate`, also run the reference-equivalence check every 12
/// simulated hours.
fn run_digest(seed: u64, chaos: bool, gate: bool) -> (String, RunSummary) {
    let mut o = world(seed, chaos);
    let end = SimTime::from_hours(72);
    let mut digest = String::new();
    let mut hours = 0u32;
    while o.now() < end {
        o.run_until((o.now() + SimDuration::from_hours(1)).min(end));
        hours += 1;
        digest.push_str(&format!("{} {:?}\n", o.now(), o.last_plan));
        if gate && hours.is_multiple_of(12) {
            assert_planning_equivalence(&o);
        }
    }
    (digest, o.summary())
}

/// Chaos off: identical 3-day runs are byte-identical, and the live
/// planning state matches the naive reference at every checkpoint.
#[test]
fn three_day_runs_are_golden_chaos_off() {
    let (d1, s1) = run_digest(20220822, false, true);
    let (d2, s2) = run_digest(20220822, false, false);
    assert!(
        d1 == d2,
        "plan digests diverged between identical chaos-off runs"
    );
    assert_eq!(
        s1, s2,
        "RunSummary diverged between identical chaos-off runs"
    );
    assert!(d1.contains("Some("), "runs produced at least one plan");
}

/// Chaos on: a seeded multi-fault plan (outages, brownouts,
/// partitions, balloon loss) perturbs the world, and the same two
/// contracts still hold.
#[test]
fn three_day_runs_are_golden_chaos_on() {
    let (d1, s1) = run_digest(20220822, true, true);
    let (d2, s2) = run_digest(20220822, true, false);
    assert!(
        d1 == d2,
        "plan digests diverged between identical chaos-on runs"
    );
    assert_eq!(
        s1, s2,
        "RunSummary diverged between identical chaos-on runs"
    );
    assert!(d1.contains("Some("), "runs produced at least one plan");
}
