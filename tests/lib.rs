//! Stub library for the cross-crate integration-test package.
//!
//! The actual integration tests are the `[[test]]` targets declared in
//! `tests/Cargo.toml`, each a standalone file in this directory.
