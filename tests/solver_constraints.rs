//! Evaluator + solver integration over realistic fleet geometry: the
//! plans the solver emits must satisfy every physical and logical
//! constraint from Appendix B, for every time slice of a drifting
//! fleet.

use std::collections::{BTreeMap, BTreeSet};
use tssdn_core::{EvaluatorConfig, LinkEvaluator, NetworkModel, Solver, WeatherSource};
use tssdn_dataplane::{BackhaulRequest, DrainRegistry};
use tssdn_geo::TrajectorySample;
use tssdn_link::Transceiver;
use tssdn_rf::LinkQuality;
use tssdn_sim::{Fleet, FleetConfig, PlatformId, PlatformKind, RngStreams, SimTime};

fn build_world(seed: u64) -> (Fleet, NetworkModel) {
    let streams = RngStreams::new(seed);
    let mut cfg = FleetConfig::kenya(10);
    cfg.spawn_radius_m = 250_000.0;
    let fleet = Fleet::generate(cfg, &streams);
    let mut model = NetworkModel::new(WeatherSource::Itu(tssdn_rf::ItuSeasonal::tropical_wet()));
    for (id, kind) in fleet.platform_ids() {
        let xs: Vec<Transceiver> = match kind {
            PlatformKind::Balloon => (0..3).map(|i| Transceiver::balloon(id, i)).collect(),
            PlatformKind::GroundStation => (0..2)
                .map(|i| {
                    Transceiver::ground_station(
                        id,
                        i,
                        tssdn_geo::FieldOfRegard::ground_station(2.0),
                    )
                })
                .collect(),
        };
        model.add_platform(id, kind, xs);
    }
    (fleet, model)
}

fn sync_model(fleet: &Fleet, model: &mut NetworkModel, t: SimTime) {
    let ids: Vec<_> = fleet.platform_ids().collect();
    for (id, kind) in ids {
        let (ve, vn) = if kind == PlatformKind::Balloon {
            let b = &fleet.balloons[id.0 as usize];
            (b.vel_east_mps, b.vel_north_mps)
        } else {
            (0.0, 0.0)
        };
        model.report_position(
            id,
            TrajectorySample {
                t_ms: t.as_ms(),
                pos: fleet.position(id),
                vel_east_mps: ve,
                vel_north_mps: vn,
                vel_up_mps: 0.0,
            },
        );
        model.report_power(id, true);
    }
}

#[test]
fn plans_respect_all_constraints_across_a_drifting_day() {
    let (mut fleet, mut model) = build_world(3);
    let evaluator = LinkEvaluator::new(EvaluatorConfig::default());
    let solver = Solver::default();
    let ec = PlatformId(100);
    let requests: Vec<BackhaulRequest> = (0..10)
        .map(|i| BackhaulRequest {
            node: PlatformId(i),
            ec,
            min_bitrate_bps: 50_000_000,
            redundancy_group: None,
        })
        .collect();
    let gs_ids = [PlatformId(10), PlatformId(11), PlatformId(12)];
    let gw = |e: PlatformId| if e == ec { gs_ids.to_vec() } else { vec![] };

    let mut previous = BTreeSet::new();
    for hour in (0..24).step_by(2) {
        let t = SimTime::from_hours(hour);
        fleet.advance_to(t);
        sync_model(&fleet, &mut model, t);
        let graph = evaluator.evaluate(&model, t);
        let plan = solver.solve(&graph, &requests, &gw, &previous, &DrainRegistry::new(), t);

        // 1. Each transceiver used at most once.
        let mut seen = BTreeSet::new();
        for l in plan.all_links() {
            assert!(
                seen.insert(l.a),
                "transceiver reuse at hour {hour}: {:?}",
                l.a
            );
            assert!(
                seen.insert(l.b),
                "transceiver reuse at hour {hour}: {:?}",
                l.b
            );
        }
        // 2. No same-band interference within the configured beam
        //    separation on any platform.
        let links: Vec<_> = plan.all_links().collect();
        for (i, x) in links.iter().enumerate() {
            for y in links.iter().skip(i + 1) {
                if x.band != y.band {
                    continue;
                }
                for (px, dx) in [(x.a.platform, x.pointing_a), (x.b.platform, x.pointing_b)] {
                    for (py, dy) in [(y.a.platform, y.pointing_a), (y.b.platform, y.pointing_b)] {
                        if px == py {
                            assert!(
                                dx.angular_distance_deg(&dy)
                                    >= solver.config.min_beam_separation_deg - 1e-9,
                                "interference at hour {hour} on {px}"
                            );
                        }
                    }
                }
            }
        }
        // 3. Routed paths only use planned links and reach a gateway.
        let edge_set: BTreeSet<(PlatformId, PlatformId)> = plan
            .all_links()
            .map(|l| {
                let (a, b) = (l.a.platform, l.b.platform);
                (a.min(b), a.max(b))
            })
            .collect();
        for ((node, _), path) in &plan.routes {
            assert_eq!(path.first(), Some(node));
            let last = path.last().expect("non-empty path");
            assert!(gs_ids.contains(last), "path ends at a gateway");
            for w in path.windows(2) {
                assert!(
                    edge_set.contains(&(w[0].min(w[1]), w[0].max(w[1]))),
                    "hop {w:?} not in plan at hour {hour}"
                );
            }
        }
        // 4. Satisfied + unsatisfied = all requests.
        assert_eq!(plan.routes.len() + plan.unsatisfied.len(), requests.len());

        previous = plan.key_set();
    }
}

#[test]
fn hysteresis_dampens_plan_churn() {
    let (mut fleet, mut model) = build_world(5);
    let evaluator = LinkEvaluator::new(EvaluatorConfig::default());
    let solver = Solver::default();
    let ec = PlatformId(100);
    let requests: Vec<BackhaulRequest> = (0..10)
        .map(|i| BackhaulRequest {
            node: PlatformId(i),
            ec,
            min_bitrate_bps: 50_000_000,
            redundancy_group: None,
        })
        .collect();
    let gs_ids = [PlatformId(10), PlatformId(11), PlatformId(12)];
    let gw = |e: PlatformId| if e == ec { gs_ids.to_vec() } else { vec![] };

    // Two consecutive solves one minute apart: with hysteresis, the
    // second plan keeps the vast majority of the first.
    let t0 = SimTime::from_hours(10);
    fleet.advance_to(t0);
    sync_model(&fleet, &mut model, t0);
    let g0 = evaluator.evaluate(&model, t0);
    let p0 = solver.solve(
        &g0,
        &requests,
        &gw,
        &BTreeSet::new(),
        &DrainRegistry::new(),
        t0,
    );
    let keys0 = p0.key_set();

    let t1 = t0 + tssdn_sim::SimDuration::from_mins(1);
    fleet.advance_to(t1);
    sync_model(&fleet, &mut model, t1);
    let g1 = evaluator.evaluate(&model, t1);
    let p1 = solver.solve(&g1, &requests, &gw, &keys0, &DrainRegistry::new(), t1);
    let keys1 = p1.key_set();

    let kept = keys0.intersection(&keys1).count();
    assert!(
        kept * 10 >= keys0.len() * 8,
        "≥80% of links kept one minute later: {kept}/{}",
        keys0.len()
    );
    assert!(p1.kept_links >= kept, "kept_links counter consistent");
}

#[test]
fn marginal_links_only_used_when_necessary() {
    let (mut fleet, mut model) = build_world(7);
    let evaluator = LinkEvaluator::new(EvaluatorConfig::default());
    let solver = Solver::default();
    let ec = PlatformId(100);
    let requests: Vec<BackhaulRequest> = (0..10)
        .map(|i| BackhaulRequest {
            node: PlatformId(i),
            ec,
            min_bitrate_bps: 50_000_000,
            redundancy_group: None,
        })
        .collect();
    let gs_ids = [PlatformId(10), PlatformId(11), PlatformId(12)];
    let gw = |e: PlatformId| if e == ec { gs_ids.to_vec() } else { vec![] };

    let t = SimTime::from_hours(12);
    fleet.advance_to(t);
    sync_model(&fleet, &mut model, t);
    let graph = evaluator.evaluate(&model, t);
    let plan = solver.solve(
        &graph,
        &requests,
        &gw,
        &BTreeSet::new(),
        &DrainRegistry::new(),
        t,
    );

    // Count acceptable candidates per platform pair; a marginal link in
    // the demand plan implies no acceptable candidate tied that pair's
    // route utility... weak form: the plan must not be *mostly*
    // marginal when acceptable candidates abound.
    let acceptable = graph
        .links
        .iter()
        .filter(|l| l.quality == LinkQuality::Acceptable)
        .count();
    let marginal_in_plan = plan
        .all_links()
        .filter(|l| l.quality == LinkQuality::Marginal)
        .count();
    if acceptable > 50 {
        assert!(
            marginal_in_plan * 4 <= plan.all_links().count(),
            "marginal links are a minority when acceptable candidates abound"
        );
    }
    // Redundant links are never marginal (solver policy).
    assert!(plan
        .redundant_links
        .iter()
        .all(|l| l.quality == LinkQuality::Acceptable));
}

#[test]
fn evaluator_candidate_count_scales_with_fleet_density() {
    let counts: BTreeMap<usize, usize> = [6usize, 12]
        .into_iter()
        .map(|n| {
            let streams = RngStreams::new(9);
            let mut cfg = FleetConfig::kenya(n);
            cfg.spawn_radius_m = 200_000.0;
            let fleet = Fleet::generate(cfg, &streams);
            let mut model =
                NetworkModel::new(WeatherSource::Itu(tssdn_rf::ItuSeasonal::tropical_wet()));
            for (id, kind) in fleet.platform_ids() {
                let xs: Vec<Transceiver> = match kind {
                    PlatformKind::Balloon => (0..3).map(|i| Transceiver::balloon(id, i)).collect(),
                    PlatformKind::GroundStation => (0..2)
                        .map(|i| {
                            Transceiver::ground_station(
                                id,
                                i,
                                tssdn_geo::FieldOfRegard::ground_station(2.0),
                            )
                        })
                        .collect(),
                };
                model.add_platform(id, kind, xs);
            }
            sync_model(&fleet, &mut model, SimTime::ZERO);
            let g = LinkEvaluator::new(EvaluatorConfig::default()).evaluate(&model, SimTime::ZERO);
            (n, g.len())
        })
        .collect();
    assert!(
        counts[&12] > counts[&6] * 2,
        "candidates grow superlinearly with platforms: {counts:?}"
    );
}
