#!/usr/bin/env bash
# Performance and A/B benches, each emitting a JSON artifact.
#
#   ./scripts/bench.sh             # full runs: the scenario matrix
#                                  # (artifact_out/scorecards/*.json +
#                                  # summary.csv, E21),
#                                  # BENCH_planning.json
#                                  # (25/50/100/100-dispersed fleets),
#                                  # BENCH_traffic.json (25/50/100-
#                                  # balloon meshes, ≥5k aggregate
#                                  # flows, plus the 1M-flow
#                                  # hierarchical tier),
#                                  # BENCH_snf_ab.json (E18)
#                                  # and BENCH_custody_ab.json (E19)
#   ./scripts/bench.sh --smoke     # quick runs, wired into verify.sh:
#                                  # planning writes no file but proves
#                                  # the bit-identity equivalence gate;
#                                  # the other bins still write their
#                                  # artifacts (full gates, smaller
#                                  # fleets/iters)
#   ./scripts/bench.sh --out DIR   # write every artifact under DIR
#                                  # (created if missing) instead of
#                                  # the repo root; composes with
#                                  # --smoke
#   ./scripts/bench.sh --only NAME # run just the scenario matrix,
#                                  # filtered to the named scenario
#                                  # (e.g. --only chaos_blackout);
#                                  # composes with --smoke/--out
#
# Every bin gets an explicit --out path — no bin-specific default can
# silently collide with another's artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=""
out_dir="."
only=""
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) smoke="--smoke"; shift ;;
    --out)
      [ $# -ge 2 ] || { echo "bench.sh: --out needs a directory" >&2; exit 2; }
      out_dir="$2"; shift 2 ;;
    --only)
      [ $# -ge 2 ] || { echo "bench.sh: --only needs a scenario name" >&2; exit 2; }
      only="$2"; shift 2 ;;
    *) echo "bench.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done
mkdir -p "$out_dir"

# Scenario matrix (E21): named end-to-end scenarios with per-scenario
# scorecards, floor assertions, and a rerun byte-identity gate.
# Writes <matrix_out>/scorecards/<name>.json + summary.csv; with the
# default repo-root out dir the scorecards land under artifact_out/
# next to the figure-bin exports. With --only this is the whole bench
# run — the scenario filter makes no sense for the other bins.
matrix_out="$out_dir"
[ "$out_dir" = "." ] && matrix_out="artifact_out"
cargo run --release -q -p tssdn-bench --bin scenario_matrix -- \
  ${smoke:+"$smoke"} ${only:+--only "$only"} --out "$matrix_out"
if [ -n "$only" ]; then
  exit 0
fi

# Planning: in smoke mode the bench is a pure equivalence gate and
# writes no artifact unless a destination was chosen explicitly.
planning_args=(${smoke:+"$smoke"})
if [ "$out_dir" != "." ] || [ -z "$smoke" ]; then
  planning_args+=(--out "$out_dir/BENCH_planning.json")
fi
cargo run --release -q -p tssdn-bench --bin planning_hot_path -- \
  ${planning_args[@]+"${planning_args[@]}"}

# The traffic bench always records the full 25/50/100 flat ladder
# plus the 1000-balloon × 1M-flow hierarchical tier (identity,
# lossless-collapse, tick-budget, and warm≤cold gates in both modes);
# smoke only shrinks the iteration count.
cargo run --release -q -p tssdn-bench --bin traffic_scale -- \
  ${smoke:+"$smoke"} --out "$out_dir/BENCH_traffic.json"

# E18 store-and-forward A/B: gates on rerun identity, strictly higher
# bulk delivery with buffering on, and an untouched Control class.
cargo run --release -q -p tssdn-bench --bin snf_ab -- \
  ${smoke:+"$smoke"} --out "$out_dir/BENCH_snf_ab.json"

# E19 custody-transfer A/B: gates on rerun identity, queued bits
# surviving a warned balloon loss (strictly more drained, strictly
# less backlog lost), an untouched Control class, and the extended
# conservation invariant in both arms.
cargo run --release -q -p tssdn-bench --bin custody_ab -- \
  ${smoke:+"$smoke"} --out "$out_dir/BENCH_custody_ab.json"
