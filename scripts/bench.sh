#!/usr/bin/env bash
# Planning hot-path benchmark: optimized evaluate→solve vs the naive
# reference retained in tssdn_core::reference.
#
#   ./scripts/bench.sh           # full run: 25/50/100/100-dispersed
#                                # fleets, writes BENCH_planning.json
#   ./scripts/bench.sh --smoke   # one tiny fleet, no file written —
#                                # proves the binary and the
#                                # bit-identity equivalence gate still
#                                # pass (wired into verify.sh)
#
# Extra args are passed through (e.g. --out PATH).
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run --release -q -p tssdn-bench --bin planning_hot_path -- "$@"
