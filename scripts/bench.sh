#!/usr/bin/env bash
# Performance benches: the planning hot path and the traffic
# allocator, each emitting a JSON artifact.
#
#   ./scripts/bench.sh           # full runs: BENCH_planning.json
#                                # (25/50/100/100-dispersed fleets) +
#                                # BENCH_traffic.json (25/50/100-balloon
#                                # meshes, ≥5k aggregate flows)
#   ./scripts/bench.sh --smoke   # quick runs, wired into verify.sh:
#                                # planning writes no file but proves
#                                # the bit-identity equivalence gate;
#                                # traffic still writes
#                                # BENCH_traffic.json (full size
#                                # ladder, fewer iters)
#
# Extra args are passed through to the planning bench (e.g. --out).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p tssdn-bench --bin planning_hot_path -- "$@"

# The traffic bench always records the full 25/50/100 ladder; only the
# mode flag passes through so a caller's --out never collides with the
# planning artifact's.
traffic_args=()
for a in "$@"; do
  if [ "$a" = "--smoke" ]; then traffic_args+=("--smoke"); fi
done
cargo run --release -q -p tssdn-bench --bin traffic_scale -- ${traffic_args[@]+"${traffic_args[@]}"}

# E18 store-and-forward A/B: gates on rerun identity, strictly higher
# bulk delivery with buffering on, and an untouched Control class.
cargo run --release -q -p tssdn-bench --bin snf_ab -- ${traffic_args[@]+"${traffic_args[@]}"}
