#!/usr/bin/env bash
# Tier-1 verification gate: every PR must pass this clean.
#
#   ./scripts/verify.sh          # fmt + build + tests + clippy
#
# The test pass includes the chaos soak (tests/chaos_soak.rs), so a
# green run certifies the robustness contract too: no stuck intents,
# bounded post-fault recovery, bit-identical reruns per (seed, plan).
# CI (.github/workflows/ci.yml) runs exactly this script; keep the
# two in lockstep by only ever editing the gate here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> scripts/bench.sh --smoke (scenario matrix + planning + traffic gates)"
./scripts/bench.sh --smoke

echo "verify: OK"
